#include "core/tune.hpp"

#include <algorithm>
#include <cmath>

#include "core/bitonic.hpp"

namespace gas {

namespace {

double d(std::size_t v) { return static_cast<double>(v); }

}  // namespace

double modeled_insertion_cycles(std::size_t k, const simt::DeviceProperties& props) {
    // Shuffled input: ~k^2/4 compares + ~k^2/4 moves, plus the O(k) floor.
    return props.cpi * (d(k) * d(k) / 2.0 + 2.0 * d(k));
}

double modeled_binary_insertion_cycles(std::size_t k, const simt::DeviceProperties& props) {
    const double log2k = k > 1 ? std::log2(d(k)) : 0.0;
    // Probe compares k*log2(k), shuffled-input moves ~k^2/4, plus the
    // search-bookkeeping constant per element.
    return props.cpi * (d(k) * log2k + d(k) * d(k) / 4.0 + 2.0 * d(k));
}

double modeled_bitonic_cycles(std::size_t k, unsigned block_threads,
                              const simt::DeviceProperties& props) {
    const std::size_t m = detail::bitonic_padded_size(k);
    const std::size_t steps = detail::bitonic_step_count(m);
    const double lanes = d(std::max(block_threads, 1u));
    const double pairs_per_lane = std::ceil(d(m / 2) / lanes);
    const double elems_per_lane = std::ceil(d(m) / lanes);
    // Per pair: index math + compare + two unconditional write-backs
    // (~8 ops) and 2 reads + 2 writes of shared (4 accesses).
    const double step_cost = pairs_per_lane * (8.0 * props.cpi +
                                               4.0 * props.shared_access_cycles);
    // Staging and write-back: one shared access + ~2 ops per element
    // (global traffic is coalesced and belongs to the memory roofline, not
    // the cycle count).
    const double copy_cost = elems_per_lane * (2.0 * props.cpi +
                                               props.shared_access_cycles);
    return d(steps) * step_cost + 2.0 * copy_cost;
}

Phase3Tuning tune_sort_phase(const simt::DeviceProperties& props, unsigned block_threads,
                             std::size_t bucket_target) {
    Phase3Tuning t;

    // Smallest k where binary insertion's saving over plain insertion also
    // amortizes the size-binning scheduling pass (~6 cycles per bucket of
    // counting-sort work on one lane, paid once per block).
    const double sched_per_bucket = 6.0 * props.cpi;
    std::size_t crossover_binary = 256;
    for (std::size_t k = 2; k <= 4096; ++k) {
        if (modeled_insertion_cycles(k, props) >
            modeled_binary_insertion_cycles(k, props) + sched_per_bucket) {
            crossover_binary = k;
            break;
        }
    }
    t.small_cutoff = std::max<std::size_t>(crossover_binary, 6 * bucket_target);

    // Smallest k where the cooperative network's per-warp cycles undercut a
    // single lane serializing the bucket with binary insertion.
    std::size_t crossover_bitonic = 4096;
    for (std::size_t k = t.small_cutoff; k <= 65536; ++k) {
        if (modeled_binary_insertion_cycles(k, props) >
            modeled_bitonic_cycles(k, block_threads, props)) {
            crossover_bitonic = k;
            break;
        }
    }
    t.bitonic_cutoff = std::max<std::size_t>(crossover_bitonic, 2 * t.small_cutoff);
    return t;
}

}  // namespace gas
