#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace gas {

/// Index of the first unsorted row, or num_arrays if all sorted (diagnostics).
template <typename T>
[[nodiscard]] std::size_t first_unsorted_array(std::span<const T> data,
                                               std::size_t num_arrays,
                                               std::size_t array_size) {
    for (std::size_t a = 0; a < num_arrays; ++a) {
        const auto row = data.subspan(a * array_size, array_size);
        if (!std::is_sorted(row.begin(), row.end())) return a;
    }
    return num_arrays;
}

/// True iff every row of the N x n matrix is ascending.
template <typename T>
[[nodiscard]] bool all_arrays_sorted(std::span<const T> data, std::size_t num_arrays,
                                     std::size_t array_size) {
    return first_unsorted_array(data, num_arrays, array_size) == num_arrays;
}

/// True iff every row is descending (for SortOrder::Descending results).
template <typename T>
[[nodiscard]] bool all_arrays_sorted_descending(std::span<const T> data,
                                                std::size_t num_arrays,
                                                std::size_t array_size) {
    for (std::size_t a = 0; a < num_arrays; ++a) {
        const auto row = data.subspan(a * array_size, array_size);
        if (!std::is_sorted(row.begin(), row.end(), std::greater<>())) return false;
    }
    return true;
}

/// True iff every row of `after` is a permutation of the same row of
/// `before` (sorting must not lose, duplicate or cross-contaminate values).
template <typename T>
[[nodiscard]] bool all_arrays_permuted(std::span<const T> before, std::span<const T> after,
                                       std::size_t num_arrays, std::size_t array_size) {
    std::vector<T> b(array_size);
    std::vector<T> c(array_size);
    for (std::size_t a = 0; a < num_arrays; ++a) {
        const auto rb = before.subspan(a * array_size, array_size);
        const auto rc = after.subspan(a * array_size, array_size);
        b.assign(rb.begin(), rb.end());
        c.assign(rc.begin(), rc.end());
        std::sort(b.begin(), b.end());
        std::sort(c.begin(), c.end());
        if (b != c) return false;
    }
    return true;
}

// Container/span conveniences so float call sites keep working unchanged.
template <typename T>
[[nodiscard]] bool all_arrays_sorted(const std::vector<T>& data, std::size_t num_arrays,
                                     std::size_t array_size) {
    return all_arrays_sorted(std::span<const T>(data), num_arrays, array_size);
}
template <typename T>
[[nodiscard]] bool all_arrays_sorted(std::span<T> data, std::size_t num_arrays,
                                     std::size_t array_size) {
    return all_arrays_sorted(std::span<const T>(data), num_arrays, array_size);
}
template <typename T>
[[nodiscard]] bool all_arrays_sorted_descending(const std::vector<T>& data,
                                                std::size_t num_arrays,
                                                std::size_t array_size) {
    return all_arrays_sorted_descending(std::span<const T>(data), num_arrays, array_size);
}
template <typename T>
[[nodiscard]] bool all_arrays_permuted(const std::vector<T>& before,
                                       const std::vector<T>& after, std::size_t num_arrays,
                                       std::size_t array_size) {
    return all_arrays_permuted(std::span<const T>(before), std::span<const T>(after),
                               num_arrays, array_size);
}
template <typename T>
[[nodiscard]] bool all_arrays_permuted(const std::vector<T>& before, std::span<T> after,
                                       std::size_t num_arrays, std::size_t array_size) {
    return all_arrays_permuted(std::span<const T>(before), std::span<const T>(after),
                               num_arrays, array_size);
}

}  // namespace gas
