#include "core/batch.hpp"

#include <stdexcept>
#include <string>

namespace gas {

namespace {

void check_slices(std::span<const BatchSlice> slices, std::size_t total_arrays,
                  const char* who) {
    std::size_t next = 0;
    for (const BatchSlice& s : slices) {
        if (s.first_array != next) {
            throw std::invalid_argument(std::string(who) + ": slices must tile the batch");
        }
        next += s.num_arrays;
    }
    if (next != total_arrays) {
        throw std::invalid_argument(std::string(who) + ": slices do not cover the batch");
    }
}

}  // namespace

SortStats sort_uniform_batch_on_device(simt::Device& device, simt::DeviceBuffer<float>& data,
                                       std::span<const BatchSlice> slices,
                                       std::size_t total_arrays, std::size_t array_size,
                                       const Options& opts) {
    check_slices(slices, total_arrays, "sort_uniform_batch_on_device");
    return sort_arrays_on_device(device, data, total_arrays, array_size, opts);
}

SortStats sort_ragged_batch_on_device(simt::Device& device, simt::DeviceBuffer<float>& values,
                                      std::span<const std::uint64_t> offsets,
                                      std::span<const BatchSlice> slices,
                                      const Options& opts) {
    const std::size_t total = offsets.empty() ? 0 : offsets.size() - 1;
    check_slices(slices, total, "sort_ragged_batch_on_device");
    return sort_ragged_on_device(device, values, offsets, opts);
}

SortStats sort_pair_batch_on_device(simt::Device& device, simt::DeviceBuffer<float>& keys,
                                    simt::DeviceBuffer<float>& values,
                                    std::span<const BatchSlice> slices,
                                    std::size_t total_arrays, std::size_t array_size,
                                    const Options& opts) {
    check_slices(slices, total_arrays, "sort_pair_batch_on_device");
    return sort_pairs_on_device(device, keys, values, total_arrays, array_size, opts);
}

std::size_t batch_footprint_bytes(std::size_t total_arrays, std::size_t array_size,
                                  const Options& opts, const simt::DeviceProperties& props,
                                  std::size_t buffers) {
    // Pairs fuse into a single kernel with zero global temporaries, so their
    // footprint is just both data planes; the uniform path's temporaries (S,
    // Z, oversized-array scratch) come from the capacity model.
    if (buffers >= 2) {
        const std::size_t plane = total_arrays * array_size * sizeof(float);
        auto aligned = [](std::size_t b) {
            return (b + simt::DeviceMemory::kAlignment - 1) / simt::DeviceMemory::kAlignment *
                   simt::DeviceMemory::kAlignment;
        };
        return buffers * aligned(plane);
    }
    return device_footprint_bytes(total_arrays, array_size, opts, props, sizeof(float));
}

bool ragged_row_fits_shared(std::size_t n, const Options& opts,
                            const simt::DeviceProperties& props, std::size_t buffers) {
    if (n == 0) return true;
    // Mirrors the shared-budget checks in sort_ragged_on_device and
    // fused_pair_sort: staged row(s) + splitters + counts + cursors.  The
    // block width is the worst case the whole batch could reach (p grows
    // with the largest fused row), so a row admitted here can never make the
    // fused launch throw regardless of what it is batched with.
    (void)opts;
    const std::size_t worst_threads = props.max_threads_per_block;
    const std::size_t need = buffers * n * sizeof(float) +
                             (worst_threads + 1) * sizeof(float) +
                             2ull * worst_threads * sizeof(std::uint32_t);
    return need <= props.shared_memory_per_block;
}

}  // namespace gas
