#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gas {

/// Statistics over one sort's bucket-size array Z (Definition 4) — the
/// quantity phase 3's load balance, and therefore the paper's 20-element /
/// 10%-sampling tuning claims, hinge on.
struct BucketAnalysis {
    std::size_t buckets = 0;
    std::uint32_t min_size = 0;
    std::uint32_t max_size = 0;
    double mean_size = 0.0;
    double stddev = 0.0;
    /// max / mean — 1.0 is a perfect split; phase-3 stragglers grow with it.
    double imbalance = 1.0;
    /// Fraction of buckets that are empty (skewed data pathologies).
    double empty_fraction = 0.0;
    /// Expected phase-3 insertion-sort work, sum of size^2 / 4 — the model
    /// quantity the bucket-target ablation trades against phase-2 scans.
    double expected_sort_work = 0.0;
    /// Same work if every bucket had the mean size: the balance penalty is
    /// expected_sort_work / balanced_sort_work.
    double balanced_sort_work = 0.0;

    [[nodiscard]] double balance_penalty() const {
        return balanced_sort_work > 0.0 ? expected_sort_work / balanced_sort_work : 1.0;
    }
};

/// Analyzes a flat Z array of `num_arrays` rows x `buckets_per_array`.
[[nodiscard]] BucketAnalysis analyze_buckets(std::span<const std::uint32_t> bucket_sizes,
                                             std::size_t buckets_per_array);

/// Histogram of bucket sizes with `bins` equal-width bins over [0, max].
[[nodiscard]] std::vector<std::size_t> bucket_size_histogram(
    std::span<const std::uint32_t> bucket_sizes, std::size_t bins);

}  // namespace gas
