#include "core/gpu_array_sort.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/device_ops.hpp"
#include "core/insertion_sort.hpp"
#include "core/phases.hpp"
#include "core/resilient.hpp"
#include "core/validate.hpp"
#include "simt/graph.hpp"

namespace gas {

namespace {

PhaseStats to_phase_stats(const simt::KernelStats& k) { return {k.modeled_ms, k.wall_ms}; }

void fill_bucket_diagnostics(SortStats& stats, std::span<const std::uint32_t> z) {
    if (z.empty()) return;
    std::uint32_t mn = z[0];
    std::uint32_t mx = z[0];
    std::uint64_t sum = 0;
    for (std::uint32_t v : z) {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
        sum += v;
    }
    stats.min_bucket = mn;
    stats.max_bucket = mx;
    stats.avg_bucket = static_cast<double>(sum) / static_cast<double>(z.size());
}

}  // namespace

template <typename T>
SortStats sort_arrays_on_device(simt::Device& device, simt::DeviceBuffer<T>& data,
                                std::size_t num_arrays, std::size_t array_size,
                                const Options& opts) {
    if (data.size() < num_arrays * array_size) {
        throw std::invalid_argument("sort_arrays_on_device: buffer smaller than N x n");
    }

    SortStats stats;
    stats.num_arrays = num_arrays;
    stats.array_size = array_size;
    stats.data_bytes = num_arrays * array_size * sizeof(T);
    if (num_arrays == 0 || array_size == 0) return stats;

    const bool descending = opts.order == SortOrder::Descending;
    if (descending && !std::is_floating_point_v<T>) {
        throw std::invalid_argument(
            "sort_arrays_on_device: descending order requires a floating-point "
            "element type (implemented via IEEE negation)");
    }

    const SortPlan plan = make_plan(array_size, opts, device.props(), sizeof(T));
    stats.buckets_per_array = plan.buckets;
    stats.sample_size = plan.sample_size;

    std::vector<T> before;
    if (opts.validate) {
        const auto s = data.span();
        before.assign(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(num_arrays * array_size));
    }

    // End-to-end verification (gas::resilient): per-row multiset checksums
    // taken host-side from the freshly-staged span before the first launch
    // (a baseline no injected fault can poison — see host_row_checksums),
    // checked by one verify kernel with modeled cost right before returning.
    std::vector<std::uint64_t> expected;
    if (opts.verify_output) {
        const auto cspan =
            std::span<const T>(data.span().data(), num_arrays * array_size);
        expected = resilient::host_row_checksums<T>(cspan, num_arrays, array_size);
    }
    const auto run_verify = [&](std::span<const T> cspan) {
        if (!opts.verify_output) return;
        const auto vc = resilient::verify_rows_on_device<T>(
            device, cspan, num_arrays, array_size, opts.order, expected);
        stats.verify.modeled_ms += vc.modeled_ms;
        stats.verify.wall_ms += vc.wall_ms;
        if (!vc.ok()) {
            throw resilient::VerifyError("gpu_array_sort", vc.unsorted, vc.mismatched);
        }
    };

    // Small-array fast path: with a single bucket the three-phase machinery
    // degenerates to "one thread insertion-sorts the whole array".  Packing
    // 256 arrays into each block (instead of N one-thread blocks) fills the
    // SMs, and no splitter/Z temporaries are needed at all.
    if (plan.buckets == 1) {
        auto span0 = data.span().subspan(0, num_arrays * array_size);
        constexpr unsigned kPack = 256;
        simt::LaunchConfig cfg{"gas.small_array_sort",
                               static_cast<unsigned>((num_arrays + kPack - 1) / kPack),
                               kPack};
        auto body = [=](simt::BlockCtx& blk) {
            const auto sort_lane = [&](simt::ThreadCtx& tc) {
                const std::size_t a =
                    static_cast<std::size_t>(blk.block_idx()) * kPack + tc.tid();
                if (a >= num_arrays) return;
                const std::span<T> row{span0.data() + a * array_size, array_size};
                const InsertionCost cost = insertion_sort(row);
                tc.ops(cost.compares + cost.moves);
                tc.global_random(2ull * array_size);
            };
            blk.for_each_warp([&](simt::WarpCtx& wc) { wc.for_lanes(sort_lane); });
        };
        if (opts.graph_launch) {
            // Graph form of the same (negate) -> sort -> (negate) chain: one
            // submit, one worker-pool round-trip, bit-identical stats.
            simt::Graph g;
            std::vector<simt::Graph::NodeId> negates;
            if constexpr (std::is_floating_point_v<T>) {
                if (descending) {
                    auto ns = negate_spec(span0);
                    negates.push_back(g.add_kernel(ns.cfg, std::move(ns.body)));
                }
            }
            const auto sort_node = g.add_kernel(cfg, std::move(body), negates);
            if constexpr (std::is_floating_point_v<T>) {
                if (descending) {
                    auto post = negate_spec(span0);
                    negates.push_back(
                        g.add_kernel(post.cfg, std::move(post.body), {sort_node}));
                }
            }
            device.submit(g);
            const simt::KernelStats& k = g.kernel_stats(sort_node);
            stats.phase3 = to_phase_stats(k);
            stats.phase3_imbalance = k.imbalance;
            for (const auto id : negates) {
                const simt::KernelStats& kn = g.kernel_stats(id);
                stats.extra.modeled_ms += kn.modeled_ms;
                stats.extra.wall_ms += kn.wall_ms;
            }
        } else {
            if constexpr (std::is_floating_point_v<T>) {
                if (descending) {
                    const auto k = negate_on_device(device, span0);
                    stats.extra.modeled_ms += k.modeled_ms;
                    stats.extra.wall_ms += k.wall_ms;
                }
            }
            const auto k = device.launch(cfg, body);
            stats.phase3 = to_phase_stats(k);
            stats.phase3_imbalance = k.imbalance;
            if constexpr (std::is_floating_point_v<T>) {
                if (descending) {
                    const auto k2 = negate_on_device(device, span0);
                    stats.extra.modeled_ms += k2.modeled_ms;
                    stats.extra.wall_ms += k2.wall_ms;
                }
            }
        }
        stats.peak_device_bytes = device.memory().peak_bytes_in_use();
        stats.min_bucket = static_cast<std::uint32_t>(array_size);
        stats.max_bucket = static_cast<std::uint32_t>(array_size);
        stats.avg_bucket = static_cast<double>(array_size);
        if (opts.collect_bucket_sizes) {
            stats.bucket_sizes.assign(num_arrays,
                                      static_cast<std::uint32_t>(array_size));
        }
        if (opts.validate) {
            const auto cspan = std::span<const T>(span0);
            const bool ok =
                descending ? all_arrays_sorted_descending(cspan, num_arrays, array_size)
                           : all_arrays_sorted(cspan, num_arrays, array_size);
            if (!ok || !all_arrays_permuted(std::span<const T>(before), cspan, num_arrays,
                                            array_size)) {
                throw std::logic_error("gpu_array_sort: small-array path validation failed");
            }
        }
        run_verify(std::span<const T>(span0));
        return stats;
    }

    // Run-time temporaries: S (splitters) and Z (bucket sizes) only — the
    // algorithm's in-place property.  A global scratch row per *resident*
    // block is added only for arrays too large to stage in shared memory.
    simt::DeviceBuffer<T> splitters(device, num_arrays * plan.splitters_per_array);
    simt::DeviceBuffer<std::uint32_t> bucket_sizes(device, num_arrays * plan.buckets);
    simt::DeviceBuffer<T> scratch;
    std::size_t scratch_rows = 0;
    if (!plan.array_fits_shared) {
        const unsigned conc =
            device.cost_model().blocks_per_sm(plan.block_threads, /*shared_bytes=*/0);
        scratch_rows = std::min<std::size_t>(
            num_arrays,
            std::max<std::size_t>(static_cast<std::size_t>(device.props().sm_count) * conc,
                                  device.host_workers()));
        scratch = simt::DeviceBuffer<T>(device, scratch_rows * array_size);
    }

    auto span = data.span().subspan(0, num_arrays * array_size);

    if (opts.graph_launch) {
        // One work graph for the whole pipeline: (negate) -> phase1 ->
        // phase2 -> dispatch -> phase3 (-> negate), submitted in a single
        // scheduling round-trip.  Phase 3's launch is emitted by a host
        // decision node only after phase 2's Z row has settled — the
        // device-driven analog of the host-loop "launch when the previous
        // kernel returns" — so the chain never re-wakes the worker pool.
        simt::Graph g;
        std::vector<simt::Graph::NodeId> pre_deps;
        simt::Graph::NodeId pre = 0;
        bool has_negate = false;
        if constexpr (std::is_floating_point_v<T>) {
            if (descending) {
                auto ns = negate_spec(span);
                pre = g.add_kernel(ns.cfg, std::move(ns.body));
                pre_deps.push_back(pre);
                has_negate = true;
            }
        }
        auto s1 = detail::splitter_phase_spec<T>(span, num_arrays, plan, splitters.span());
        const auto n1 = g.add_kernel(s1.cfg, std::move(s1.body), pre_deps);
        auto s2 = detail::bucket_phase_spec<T>(span, num_arrays, plan, opts,
                                               splitters.span(), bucket_sizes.span(),
                                               scratch.span(), scratch_rows);
        const auto n2 = g.add_kernel(s2.cfg, std::move(s2.body), {n1});

        auto s3 = detail::sort_phase_spec<T>(device.props(), span, num_arrays, plan,
                                             bucket_sizes.span(), opts);
        auto n3 = std::make_shared<simt::Graph::NodeId>(0);
        auto post = std::make_shared<simt::Graph::NodeId>(0);
        g.add_host(
            "gas.phase3_dispatch",
            [s3 = std::move(s3), span, n3, post, descending](simt::GraphCtx& ctx) {
                (void)descending;
                *n3 = ctx.enqueue_kernel(s3.cfg, s3.body);
                if constexpr (std::is_floating_point_v<T>) {
                    if (descending) {
                        auto ns = negate_spec(span);
                        *post = ctx.enqueue_kernel(ns.cfg, std::move(ns.body), {*n3});
                    }
                }
            },
            {n2});
        device.submit(g);

        stats.phase1 = to_phase_stats(g.kernel_stats(n1));
        stats.phase2 = to_phase_stats(g.kernel_stats(n2));
        const simt::KernelStats& k3 = g.kernel_stats(*n3);
        stats.phase3 = to_phase_stats(k3);
        stats.phase3_imbalance = k3.imbalance;
        if (has_negate) {
            const simt::KernelStats& kp = g.kernel_stats(pre);
            const simt::KernelStats& kq = g.kernel_stats(*post);
            stats.extra.modeled_ms += kp.modeled_ms + kq.modeled_ms;
            stats.extra.wall_ms += kp.wall_ms + kq.wall_ms;
        }
    } else {
        // Descending order: negate, sort ascending, negate back (IEEE
        // negation reverses float total order exactly).
        if constexpr (std::is_floating_point_v<T>) {
            if (descending) {
                const auto k = negate_on_device(device, span);
                stats.extra.modeled_ms += k.modeled_ms;
                stats.extra.wall_ms += k.wall_ms;
            }
        }

        stats.phase1 = to_phase_stats(detail::splitter_phase<T>(
            device, span, num_arrays, plan, splitters.span()));
        stats.phase2 = to_phase_stats(detail::bucket_phase<T>(
            device, span, num_arrays, plan, opts, splitters.span(), bucket_sizes.span(),
            scratch.span(), scratch_rows));
        const simt::KernelStats k3 = detail::sort_phase<T>(device, span, num_arrays, plan,
                                                           bucket_sizes.span(), opts);
        stats.phase3 = to_phase_stats(k3);
        stats.phase3_imbalance = k3.imbalance;

        if constexpr (std::is_floating_point_v<T>) {
            if (descending) {
                const auto k = negate_on_device(device, span);
                stats.extra.modeled_ms += k.modeled_ms;
                stats.extra.wall_ms += k.wall_ms;
            }
        }
    }

    stats.peak_device_bytes = device.memory().peak_bytes_in_use();
    fill_bucket_diagnostics(stats, bucket_sizes.span());
    if (opts.collect_bucket_sizes) {
        const auto z = bucket_sizes.span();
        stats.bucket_sizes.assign(z.begin(), z.end());
    }

    if (opts.validate) {
        const auto cspan = std::span<const T>(span);
        const bool ok = descending
                            ? all_arrays_sorted_descending(cspan, num_arrays, array_size)
                            : all_arrays_sorted(cspan, num_arrays, array_size);
        if (!ok) {
            throw std::logic_error("gpu_array_sort: validation failed, output not in " +
                                   to_string(opts.order) + " order");
        }
        if (!all_arrays_permuted(std::span<const T>(before), cspan, num_arrays,
                                 array_size)) {
            throw std::logic_error("gpu_array_sort: validation failed, output is not a "
                                   "per-array permutation of the input");
        }
    }
    run_verify(std::span<const T>(span));
    return stats;
}

template <typename T>
SortStats gpu_array_sort(simt::Device& device, std::span<T> host_data,
                         std::size_t num_arrays, std::size_t array_size,
                         const Options& opts) {
    if (host_data.size() < num_arrays * array_size) {
        throw std::invalid_argument("gpu_array_sort: host span smaller than N x n");
    }
    SortStats stats;
    if (num_arrays == 0 || array_size == 0) {
        stats.num_arrays = num_arrays;
        stats.array_size = array_size;
        return stats;
    }

    simt::DeviceBuffer<T> data(device, num_arrays * array_size);
    const double h2d = simt::copy_to_device(std::span<const T>(host_data), data);
    stats = sort_arrays_on_device(device, data, num_arrays, array_size, opts);
    stats.h2d_ms = h2d;
    stats.d2h_ms = simt::copy_to_host(data, host_data);
    return stats;
}

std::size_t device_footprint_bytes(std::size_t num_arrays, std::size_t array_size,
                                   const Options& opts, const simt::DeviceProperties& props,
                                   std::size_t elem_size) {
    const SortPlan plan = make_plan(array_size, opts, props, elem_size);
    auto aligned = [](std::size_t b) {
        return (b + simt::DeviceMemory::kAlignment - 1) / simt::DeviceMemory::kAlignment *
               simt::DeviceMemory::kAlignment;
    };
    std::size_t total = aligned(num_arrays * array_size * elem_size);  // the data
    if (plan.buckets == 1) return total;  // small-array path: no temporaries
    total += aligned(num_arrays * plan.splitters_per_array * elem_size);       // S
    total += aligned(num_arrays * plan.buckets * sizeof(std::uint32_t));       // Z
    if (!plan.array_fits_shared) {
        const std::size_t rows =
            static_cast<std::size_t>(props.sm_count) * props.max_blocks_per_sm;
        total += aligned(std::min(rows, num_arrays) * array_size * elem_size);
    }
    return total;
}

#define GAS_INSTANTIATE_SORT(T)                                                            \
    template SortStats sort_arrays_on_device<T>(simt::Device&, simt::DeviceBuffer<T>&,     \
                                                std::size_t, std::size_t, const Options&); \
    template SortStats gpu_array_sort<T>(simt::Device&, std::span<T>, std::size_t,         \
                                         std::size_t, const Options&);
GAS_INSTANTIATE_SORT(float)
GAS_INSTANTIATE_SORT(double)
GAS_INSTANTIATE_SORT(std::uint32_t)
GAS_INSTANTIATE_SORT(std::int32_t)
#undef GAS_INSTANTIATE_SORT

}  // namespace gas
