#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/options.hpp"
#include "core/plan.hpp"

namespace gas {

/// The two basis terms of the paper's Eq. 2 time-complexity expression,
///   T(n) = a * (n + q) + b * ((p*r + 1) / p) * n * log2(n),
/// evaluated for arrays of n elements under the given options (p, q come
/// from the plan; r is the sampling rate).  Fig. 2 overlays a fit of this
/// model on the measured curve.
struct ComplexityTerms {
    double linear = 0.0;  ///< n + q
    double nlogn = 0.0;   ///< ((p*r + 1) / p) * n * log2(n)
};

[[nodiscard]] ComplexityTerms complexity_terms(std::size_t n, const Options& opts,
                                               const simt::DeviceProperties& props);

/// Least-squares fit of measured times against the Eq. 2 basis.  If the
/// unconstrained 2-term fit goes negative (the bases are nearly collinear
/// over small n ranges), falls back to the better single-term fit.
struct ComplexityFit {
    double a = 0.0;  ///< coefficient of the linear term
    double b = 0.0;  ///< coefficient of the n*log2(n) term
    double pearson = 0.0;              ///< correlation of predicted vs. measured
    std::vector<double> predicted_ms;  ///< model value per input point
};

[[nodiscard]] ComplexityFit fit_complexity(std::span<const std::size_t> sizes,
                                           std::span<const double> measured_ms,
                                           const Options& opts,
                                           const simt::DeviceProperties& props);

}  // namespace gas
