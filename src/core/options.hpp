#pragma once

#include <cstddef>
#include <string>

namespace gas {

/// How phase 2 assigns work to threads.
enum class BucketingStrategy {
    /// The paper's scheme: one splitter pair per thread; every thread scans
    /// the whole array and keeps the elements in its pair's range.  Branch
    /// divergence free, O(n) work per thread.
    ScanPerThread,
    /// Extension: each thread scans an n/p contiguous chunk and binary
    /// searches the splitters per element.  O((n/p) log p) work per thread
    /// but needs shared-memory cursors (atomics on real hardware).
    BinarySearch,
};

[[nodiscard]] inline std::string to_string(BucketingStrategy s) {
    return s == BucketingStrategy::ScanPerThread ? "scan-per-thread" : "binary-search";
}

/// Output ordering.  Descending runs the same ascending machinery over
/// negated keys (an elementwise negate kernel before and after — IEEE
/// negation reverses float total order exactly), so every path supports it.
enum class SortOrder { Ascending, Descending };

[[nodiscard]] inline std::string to_string(SortOrder o) {
    return o == SortOrder::Ascending ? "ascending" : "descending";
}

/// Tuning knobs of GPU-ArraySort.  Defaults are the paper's choices.
struct Options {
    /// Minimum elements per bucket; the paper's empirical optimum is 20
    /// (section 5.1: "best performance ... at least 20 elements per bucket").
    std::size_t bucket_target = 20;

    /// Regular-sampling rate for splitter selection; the paper found 10%
    /// best for uniformly distributed data (section 5.1).
    double sampling_rate = 0.10;

    BucketingStrategy strategy = BucketingStrategy::ScanPerThread;

    SortOrder order = SortOrder::Ascending;

    /// Threads cooperating on one bucket in phase 2.  The paper explored >1
    /// and found it slower (section 5.2); kept as an ablation knob.
    unsigned threads_per_bucket = 1;

    /// Verify output (sortedness + per-array permutation) before returning.
    bool validate = false;

    /// Copy the bucket-size array Z into SortStats::bucket_sizes for
    /// offline analysis (core/analysis.hpp).  Costs a host copy of N*p u32.
    bool collect_bucket_sizes = false;
};

}  // namespace gas
