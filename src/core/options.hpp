#pragma once

#include <cstddef>
#include <string>

namespace gas {

/// How phase 2 assigns work to threads.
enum class BucketingStrategy {
    /// The paper's scheme: one splitter pair per thread; every thread scans
    /// the whole array and keeps the elements in its pair's range.  Branch
    /// divergence free, O(n) work per thread.
    ScanPerThread,
    /// Extension: each thread scans an n/p contiguous chunk and binary
    /// searches the splitters per element.  O((n/p) log p) work per thread
    /// but needs shared-memory cursors (atomics on real hardware).
    BinarySearch,
};

[[nodiscard]] inline std::string to_string(BucketingStrategy s) {
    return s == BucketingStrategy::ScanPerThread ? "scan-per-thread" : "binary-search";
}

/// Output ordering.  Descending runs the same ascending machinery over
/// negated keys (an elementwise negate kernel before and after — IEEE
/// negation reverses float total order exactly), so every path supports it.
enum class SortOrder { Ascending, Descending };

[[nodiscard]] inline std::string to_string(SortOrder o) {
    return o == SortOrder::Ascending ? "ascending" : "descending";
}

/// Tuning knobs of GPU-ArraySort.  Defaults are the paper's choices.
struct Options {
    /// Minimum elements per bucket; the paper's empirical optimum is 20
    /// (section 5.1: "best performance ... at least 20 elements per bucket").
    std::size_t bucket_target = 20;

    /// Regular-sampling rate for splitter selection; the paper found 10%
    /// best for uniformly distributed data (section 5.1).
    double sampling_rate = 0.10;

    BucketingStrategy strategy = BucketingStrategy::ScanPerThread;

    SortOrder order = SortOrder::Ascending;

    /// Threads cooperating on one bucket in phase 2.  The paper explored >1
    /// and found it slower (section 5.2); kept as an ablation knob.
    unsigned threads_per_bucket = 1;

    /// Hybrid skew-aware phase 3 (DESIGN.md section 8): per-bucket cutover
    /// between plain insertion (tiny), binary insertion (mid) and a
    /// cooperative shared-memory bitonic network (oversized), plus a
    /// size-binning scheduler that groups same-size-class buckets onto the
    /// same warp.  Off reproduces the pre-hybrid kernels bit-for-bit
    /// (identical KernelStats), which the paper-figure benches rely on.
    bool hybrid_phase3 = true;

    /// Buckets at or below this size take the classic one-lane insertion
    /// sort via the legacy fast path (no scheduling pass at all when every
    /// bucket of a block qualifies).  Default from tune_sort_phase on the
    /// modeled K40c: healthy regular-sampling buckets (~6x the 20-element
    /// target at the tail) stay on the paper's code path; only genuine skew
    /// pays for scheduling.
    std::size_t phase3_small_cutoff = 120;

    /// Buckets above this size become candidates for the cooperative
    /// bitonic-network path (when the padded run fits the remaining shared
    /// memory; a per-block cost-model cutover still compares it against
    /// binned binary insertion).  Default from tune_sort_phase: 2x the
    /// small cutoff, past the point where the modeled network beats a
    /// single serialized lane for every block width.
    std::size_t phase3_bitonic_cutoff = 240;

    /// Submit the phase1 -> phase2 -> phase3 pipeline as one simt::Graph
    /// (Device::submit) instead of three host round-trips through
    /// Device::launch.  Contractually bit-identical — output bytes, kernel
    /// log, and every deterministic KernelStats field match the loop path
    /// (asserted by tests/core/test_exec_equivalence.cpp) — it only
    /// amortizes scheduling: the worker pool is woken once per sort rather
    /// than once per kernel.  Paper-figure benches pin it off alongside
    /// radix pass pruning to reproduce the PR 1 launch behavior.
    bool graph_launch = true;

    /// Opt the request into adaptive autotuning (gas::tune).  The core
    /// sorters never read this knob — gpu_array_sort with any Options is
    /// bit-identical whether it is true or false.  Layers that can see the
    /// host data before launching (gas::tune::auto_tuned_options, the
    /// gas::serve controller) honour it: on (the default) lets them reshape
    /// the sampling rate, bucket target and phase-3 cutoffs from a
    /// distribution sketch; off pins the options exactly as submitted, which
    /// reproduces the pre-tune behaviour bit-for-bit.
    bool auto_tune = true;

    /// Verify output (sortedness + per-array permutation) before returning.
    /// Host-side and exhaustive: throws std::logic_error on failure.  A
    /// debugging tool — prefer verify_output for production resilience.
    bool validate = false;

    /// End-to-end result verification on the device (gas::resilient): an
    /// order-independent multiset checksum per row before sorting, then one
    /// verify kernel after — sortedness plus permutation-by-checksum.
    /// Failure throws gas::resilient::VerifyError (a transient error the
    /// retry harness re-stages and re-runs).  Costs two extra kernels,
    /// recorded in SortStats::verify; off (the default) adds no launches and
    /// keeps output bytes and KernelStats bit-identical.
    bool verify_output = false;

    /// Copy the bucket-size array Z into SortStats::bucket_sizes for
    /// offline analysis (core/analysis.hpp).  Costs a host copy of N*p u32.
    bool collect_bucket_sizes = false;
};

}  // namespace gas
