#include "core/sort_graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/device_ops.hpp"
#include "core/insertion_sort.hpp"
#include "core/phases.hpp"

namespace gas {

namespace {

PhaseStats to_phase_stats(const simt::KernelStats& k) { return {k.modeled_ms, k.wall_ms}; }

/// The sort-shaping subset compatible batches share (serve pins the
/// server-owned knobs before constructing the holder, so comparing them too
/// is safe and keeps the predicate honest).
bool same_opts(const Options& a, const Options& b) {
    return a.bucket_target == b.bucket_target && a.sampling_rate == b.sampling_rate &&
           a.strategy == b.strategy && a.order == b.order &&
           a.threads_per_bucket == b.threads_per_bucket &&
           a.hybrid_phase3 == b.hybrid_phase3 &&
           a.phase3_small_cutoff == b.phase3_small_cutoff &&
           a.phase3_bitonic_cutoff == b.phase3_bitonic_cutoff &&
           a.graph_launch == b.graph_launch && a.validate == b.validate &&
           a.verify_output == b.verify_output &&
           a.collect_bucket_sizes == b.collect_bucket_sizes;
}

}  // namespace

UniformSortGraph::UniformSortGraph(simt::Device& device, std::span<float> data,
                                   std::size_t num_arrays, std::size_t array_size,
                                   const Options& opts)
    : device_(&device),
      span_(data.subspan(0, num_arrays * array_size)),
      num_arrays_(num_arrays),
      array_size_(array_size),
      opts_(opts),
      plan_(make_plan(array_size, opts, device.props(), sizeof(float))),
      descending_(opts.order == SortOrder::Descending) {
    if (num_arrays == 0 || array_size == 0) {
        throw std::invalid_argument("UniformSortGraph: empty batch");
    }
    if (data.size() < num_arrays * array_size) {
        throw std::invalid_argument("UniformSortGraph: span smaller than N x n");
    }
    if (!opts.graph_launch || opts.validate || opts.verify_output ||
        opts.collect_bucket_sizes) {
        throw std::invalid_argument(
            "UniformSortGraph: needs graph_launch on and "
            "validate/verify_output/collect_bucket_sizes off");
    }

    if (plan_.buckets == 1) {
        // Small-array path: the packed one-lane-per-array insertion sort of
        // gpu_array_sort, as a (negate) -> sort -> (negate) chain.
        small_path_ = true;
        const std::size_t n = array_size_;
        const std::size_t num = num_arrays_;
        const auto span0 = span_;
        constexpr unsigned kPack = 256;
        simt::LaunchConfig cfg{"gas.small_array_sort",
                               static_cast<unsigned>((num + kPack - 1) / kPack), kPack};
        auto body = [=](simt::BlockCtx& blk) {
            const auto sort_lane = [&](simt::ThreadCtx& tc) {
                const std::size_t a =
                    static_cast<std::size_t>(blk.block_idx()) * kPack + tc.tid();
                if (a >= num) return;
                const std::span<float> row{span0.data() + a * n, n};
                const InsertionCost cost = insertion_sort(row);
                tc.ops(cost.compares + cost.moves);
                tc.global_random(2ull * n);
            };
            blk.for_each_warp([&](simt::WarpCtx& wc) { wc.for_lanes(sort_lane); });
        };
        std::vector<simt::Graph::NodeId> deps;
        if (descending_) {
            auto ns = negate_spec(span_);
            negate_nodes_.push_back(graph_.add_kernel(ns.cfg, std::move(ns.body)));
            deps = negate_nodes_;
        }
        small_node_ = graph_.add_kernel(cfg, std::move(body), deps);
        if (descending_) {
            auto post = negate_spec(span_);
            negate_nodes_.push_back(
                graph_.add_kernel(post.cfg, std::move(post.body), {small_node_}));
        }
        return;
    }

    splitters_ = simt::DeviceBuffer<float>(device, num_arrays_ * plan_.splitters_per_array);
    bucket_sizes_ =
        simt::DeviceBuffer<std::uint32_t>(device, num_arrays_ * plan_.buckets);
    std::size_t scratch_rows = 0;
    if (!plan_.array_fits_shared) {
        const unsigned conc =
            device.cost_model().blocks_per_sm(plan_.block_threads, /*shared_bytes=*/0);
        scratch_rows = std::min<std::size_t>(
            num_arrays_,
            std::max<std::size_t>(static_cast<std::size_t>(device.props().sm_count) * conc,
                                  device.host_workers()));
        scratch_ = simt::DeviceBuffer<float>(device, scratch_rows * array_size_);
    }

    std::vector<simt::Graph::NodeId> pre_deps;
    if (descending_) {
        auto ns = negate_spec(span_);
        pre_ = graph_.add_kernel(ns.cfg, std::move(ns.body));
        pre_deps.push_back(pre_);
        has_negate_ = true;
    }
    auto s1 = detail::splitter_phase_spec<float>(span_, num_arrays_, plan_,
                                                 splitters_.span());
    n1_ = graph_.add_kernel(s1.cfg, std::move(s1.body), pre_deps);
    auto s2 = detail::bucket_phase_spec<float>(span_, num_arrays_, plan_, opts_,
                                               splitters_.span(), bucket_sizes_.span(),
                                               scratch_.span(), scratch_rows);
    n2_ = graph_.add_kernel(s2.cfg, std::move(s2.body), {n1_});

    auto s3 = detail::sort_phase_spec<float>(device.props(), span_, num_arrays_, plan_,
                                             bucket_sizes_.span(), opts_);
    n3_ = std::make_shared<simt::Graph::NodeId>(0);
    post_ = std::make_shared<simt::Graph::NodeId>(0);
    // The dispatch node re-enqueues phase 3 on every submit, so the spec is
    // captured by value and only copied out (never moved from).
    graph_.add_host(
        "gas.phase3_dispatch",
        [s3 = std::move(s3), span = span_, n3 = n3_, post = post_,
         descending = descending_](simt::GraphCtx& ctx) {
            *n3 = ctx.enqueue_kernel(s3.cfg, s3.body);
            if (descending) {
                auto ns = negate_spec(span);
                *post = ctx.enqueue_kernel(ns.cfg, std::move(ns.body), {*n3});
            }
        },
        {n2_});
}

SortStats UniformSortGraph::run() {
    SortStats stats;
    stats.num_arrays = num_arrays_;
    stats.array_size = array_size_;
    stats.data_bytes = num_arrays_ * array_size_ * sizeof(float);
    stats.buckets_per_array = plan_.buckets;
    stats.sample_size = plan_.sample_size;

    device_->submit(graph_);
    ++runs_;

    if (small_path_) {
        const simt::KernelStats& k = graph_.kernel_stats(small_node_);
        stats.phase3 = to_phase_stats(k);
        stats.phase3_imbalance = k.imbalance;
        for (const auto id : negate_nodes_) {
            const simt::KernelStats& kn = graph_.kernel_stats(id);
            stats.extra.modeled_ms += kn.modeled_ms;
            stats.extra.wall_ms += kn.wall_ms;
        }
        stats.peak_device_bytes = device_->memory().peak_bytes_in_use();
        stats.min_bucket = static_cast<std::uint32_t>(array_size_);
        stats.max_bucket = static_cast<std::uint32_t>(array_size_);
        stats.avg_bucket = static_cast<double>(array_size_);
        return stats;
    }

    stats.phase1 = to_phase_stats(graph_.kernel_stats(n1_));
    stats.phase2 = to_phase_stats(graph_.kernel_stats(n2_));
    const simt::KernelStats& k3 = graph_.kernel_stats(*n3_);
    stats.phase3 = to_phase_stats(k3);
    stats.phase3_imbalance = k3.imbalance;
    if (has_negate_) {
        const simt::KernelStats& kp = graph_.kernel_stats(pre_);
        const simt::KernelStats& kq = graph_.kernel_stats(*post_);
        stats.extra.modeled_ms += kp.modeled_ms + kq.modeled_ms;
        stats.extra.wall_ms += kp.wall_ms + kq.wall_ms;
    }

    stats.peak_device_bytes = device_->memory().peak_bytes_in_use();
    const auto z = bucket_sizes_.span();
    if (!z.empty()) {
        std::uint32_t mn = z[0];
        std::uint32_t mx = z[0];
        std::uint64_t sum = 0;
        for (const std::uint32_t v : z) {
            mn = std::min(mn, v);
            mx = std::max(mx, v);
            sum += v;
        }
        stats.min_bucket = mn;
        stats.max_bucket = mx;
        stats.avg_bucket = static_cast<double>(sum) / static_cast<double>(z.size());
    }
    return stats;
}

bool UniformSortGraph::matches(const simt::Device& device, std::span<const float> data,
                               std::size_t num_arrays, std::size_t array_size,
                               const Options& opts) const {
    return device_ == &device && span_.data() == data.data() &&
           num_arrays_ == num_arrays && array_size_ == array_size &&
           data.size() >= num_arrays * array_size && same_opts(opts_, opts);
}

}  // namespace gas
