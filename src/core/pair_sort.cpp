#include "core/pair_sort.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <string>

#include "core/device_ops.hpp"
#include "core/hybrid_phase3.hpp"
#include "core/insertion_sort.hpp"
#include "core/phases.hpp"
#include "core/resilient.hpp"
#include "core/warp_bucket.hpp"

namespace gas {

namespace {

/// Location of one array inside the flat buffers.
struct Extent {
    std::size_t base;
    std::size_t n;
};

/// Geometry of one array under the shared options (same rules as make_plan,
/// evaluated per block for ragged inputs).
struct RowGeom {
    std::size_t p = 1;
    std::size_t sample = 1;
};

RowGeom row_geom(std::size_t n, const Options& opts, unsigned block_threads) {
    RowGeom g;
    if (n == 0) return g;
    g.p = std::clamp<std::size_t>(n / opts.bucket_target, 1, block_threads);
    g.sample = static_cast<std::size_t>(
        std::llround(opts.sampling_rate * static_cast<double>(n)));
    g.sample = std::min(std::max(g.sample, g.p), n);
    return g;
}

/// The fused key-value sample-sort kernel: one block per array, splitters /
/// counts / cursors never leave shared memory, the value array is permuted
/// alongside the keys, everything lands back in place.
template <typename T>
SortStats fused_pair_sort(simt::Device& device, std::span<T> keys,
                          std::span<T> values, std::size_t num_arrays,
                          std::size_t max_n, const Options& opts,
                          const std::function<Extent(std::size_t)>& extent_of) {
    SortStats stats;
    stats.num_arrays = num_arrays;
    stats.array_size = max_n;
    if (num_arrays == 0 || max_n == 0) return stats;
    if (opts.bucket_target == 0) throw std::invalid_argument("bucket_target must be >= 1");
    if (!(opts.sampling_rate > 0.0) || opts.sampling_rate > 1.0) {
        throw std::invalid_argument("sampling_rate must be in (0, 1]");
    }

    const auto& props = device.props();
    const std::size_t max_p =
        std::clamp<std::size_t>(max_n / opts.bucket_target, 1, props.max_threads_per_block);
    const auto block_threads = static_cast<unsigned>(max_p);
    stats.buckets_per_array = max_p;

    const std::size_t shared_need = 2 * max_n * sizeof(T) +
                                    (max_p + 1) * sizeof(T) +
                                    2ull * block_threads * sizeof(std::uint32_t);
    if (shared_need > props.shared_memory_per_block) {
        throw std::invalid_argument(
            "pair sort: an array is too large for shared-memory staging (" +
            std::to_string(max_n) + " pairs need " + std::to_string(shared_need) +
            " B of " + std::to_string(props.shared_memory_per_block) + " B)");
    }

    simt::LaunchConfig cfg{"gas.pair_sort_fused", static_cast<unsigned>(num_arrays),
                           block_threads};
    const simt::KernelStats k = device.launch(cfg, [&](simt::BlockCtx& blk) {
        const Extent ext = extent_of(blk.block_idx());
        const std::size_t n = ext.n;
        const RowGeom geom = row_geom(n, opts, block_threads);
        const std::size_t p = geom.p;

        auto sh_splitters = blk.shared_alloc<T>(p + 1);
        auto counts = blk.shared_alloc<std::uint32_t>(block_threads);
        auto starts = blk.shared_alloc<std::uint32_t>(block_threads);
        auto staged_k = blk.shared_alloc<T>(std::max<std::size_t>(n, 1));
        auto staged_v = blk.shared_alloc<T>(std::max<std::size_t>(n, 1));
        if (n == 0) return;
        T* key_row = keys.data() + ext.base;
        T* val_row = values.data() + ext.base;

        // Phase 1 (fused): sample the keys, insertion-sort the sample, pick
        // splitters — all in shared memory, one thread (paper section 5.1).
        blk.single_thread([&](simt::ThreadCtx& tc) {
            const std::size_t stride = n / geom.sample;
            std::span<T> sample = staged_k.subspan(0, geom.sample);
            for (std::size_t s = 0; s < geom.sample; ++s) sample[s] = key_row[s * stride];
            tc.global_random(geom.sample);
            tc.shared(geom.sample);
            const InsertionCost cost = insertion_sort(sample);
            tc.ops(cost.compares + cost.moves);
            tc.shared(2 * (cost.compares + cost.moves));
            sh_splitters[0] = detail::low_sentinel<T>();
            const std::size_t sstride = geom.sample / p;
            for (std::size_t j = 0; j + 1 < p; ++j) {
                sh_splitters[j + 1] = sample[(j + 1) * sstride];
            }
            sh_splitters[p] = detail::high_sentinel<T>();
            tc.shared(2 * p);
            tc.ops(p);
        });

        // Stage both rows (cooperative, coalesced).
        const auto stage_lane = [&](simt::ThreadCtx& tc) {
            std::uint64_t copied = 0;
            for (std::size_t i = tc.tid(); i < n; i += block_threads) {
                staged_k[i] = key_row[i];
                staged_v[i] = val_row[i];
                ++copied;
            }
            tc.global_coalesced(2 * copied * sizeof(T));
            tc.shared(2 * copied);
            tc.ops(copied);
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) {
            if (wc.tracked()) {
                wc.for_lanes(stage_lane);
                return;
            }
            detail::warp_stage_rows(key_row, staged_k.data(), n, block_threads,
                                    wc.lane_begin(), wc.width());
            detail::warp_stage_rows(val_row, staged_v.data(), n, block_threads,
                                    wc.lane_begin(), wc.width());
            for (unsigned l = wc.lane_begin(); l < wc.lane_end(); ++l) {
                const std::uint64_t copied = detail::strided_count(n, l, block_threads);
                wc.coalesced_lane(l, 2 * copied * sizeof(T));
                wc.shared_lane(l, 2 * copied);
                wc.ops_lane(l, copied);
            }
        });

        // Phase 2 (fused): count per splitter pair, scan, write back in
        // place — keys decide the bucket, values ride along.
        const auto count_lane = [&](simt::ThreadCtx& tc) {
            if (tc.tid() >= p) return;
            const T lo = sh_splitters[tc.tid()];
            const T hi = sh_splitters[tc.tid() + 1];
            std::uint32_t c = 0;
            for (std::size_t i = 0; i < n; ++i) {
                const T x = staged_k[i];
                c += detail::in_bucket(x, lo, hi, tc.tid() == 0) ? 1u : 0u;
            }
            counts[tc.tid()] = c;
            tc.shared(n + 3);
            tc.ops(n * 3);
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) {
            if (wc.tracked()) {
                wc.for_lanes(count_lane);
                return;
            }
            const unsigned wb = wc.lane_begin();
            if (wb >= p) return;  // fully idle warp on short arrays
            const auto w = static_cast<unsigned>(std::min<std::size_t>(wc.lane_end(), p)) - wb;
            detail::warp_count_buckets(staged_k.data(), n, sh_splitters.data(), wb, w,
                                       counts.data());
            for (unsigned k2 = 0; k2 < w; ++k2) {
                wc.shared_lane(wb + k2, n + 3);
                wc.ops_lane(wb + k2, n * 3);
            }
        });
        std::uint32_t k_max = 0;
        blk.single_thread([&](simt::ThreadCtx& tc) {
            std::uint32_t running = 0;
            std::uint64_t sum = 0;
            for (std::size_t j = 0; j < p; ++j) {
                starts[j] = running;
                const std::uint32_t c = counts[j];
                running += c;
                sum += c;
                if (opts.hybrid_phase3) k_max = std::max(k_max, c);
            }
#ifndef NDEBUG
            if (sum != n) {
                throw std::logic_error("gas.pair_sort_fused: bucket counts of array " +
                                       std::to_string(blk.block_idx()) + " sum to " +
                                       std::to_string(sum) + ", expected " +
                                       std::to_string(n));
            }
#else
            (void)sum;
#endif
            tc.ops(opts.hybrid_phase3 ? 2 * p : p);
            tc.shared(2 * p);
        });
        const auto scatter_lane = [&](simt::ThreadCtx& tc) {
            if (tc.tid() >= p) return;
            const T lo = sh_splitters[tc.tid()];
            const T hi = sh_splitters[tc.tid() + 1];
            std::uint32_t cursor = starts[tc.tid()];
            for (std::size_t i = 0; i < n; ++i) {
                const T x = staged_k[i];
                if (detail::in_bucket(x, lo, hi, tc.tid() == 0)) {
                    key_row[cursor] = x;
                    val_row[cursor] = staged_v[i];
                    ++cursor;
                }
            }
            const std::uint64_t written = cursor - starts[tc.tid()];
            tc.shared(2 * n + 2);
            tc.ops(n * 3);
            tc.global_coalesced(2 * written * sizeof(T));
            tc.global_random(written > 0 ? 2 : 0);  // one run start per buffer
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) {
            if (wc.tracked()) {
                wc.for_lanes(scatter_lane);
                return;
            }
            const unsigned wb = wc.lane_begin();
            if (wb >= p) return;
            const auto w = static_cast<unsigned>(std::min<std::size_t>(wc.lane_end(), p)) - wb;
            std::array<std::uint32_t, simt::kMaxWarpLanes> cur;
            for (unsigned k2 = 0; k2 < w; ++k2) cur[k2] = starts[wb + k2];
            const T* sk = staged_k.data();
            const T* sv = staged_v.data();
            detail::warp_scatter_buckets(sk, n, sh_splitters.data(), p, wb, w, cur.data(),
                                         [&](std::uint32_t dst, std::size_t i) {
                                             key_row[dst] = sk[i];
                                             val_row[dst] = sv[i];
                                         });
            for (unsigned k2 = 0; k2 < w; ++k2) {
                const std::uint64_t written = cur[k2] - starts[wb + k2];
                wc.shared_lane(wb + k2, 2 * n + 2);
                wc.ops_lane(wb + k2, n * 3);
                wc.coalesced_lane(wb + k2, 2 * written * sizeof(T));
                wc.random_lane(wb + k2, written > 0 ? 2 : 0);
            }
        });

        // Phase 3 (fused).  Skewed blocks hand over to the hybrid sorter
        // (values ride along through the pair variants); balanced blocks
        // keep the one-lane-per-bucket pair insertion sort.
        if (opts.hybrid_phase3 && k_max > opts.phase3_small_cutoff) {
            detail::hybrid_phase3_block</*kPairs=*/true, T>(
                blk, props, blk.global_view(std::span<T>{key_row, n}),
                blk.global_view(std::span<T>{val_row, n}), p,
                [&](std::size_t j) -> std::uint32_t {
                    return j < p ? starts[j] : static_cast<std::uint32_t>(n);
                },
                opts);
            return;
        }
        const auto insert_lane = [&](simt::ThreadCtx& tc) {
            if (tc.tid() >= p) return;
            const std::uint32_t begin = starts[tc.tid()];
            const std::uint32_t end =
                tc.tid() + 1 < p ? starts[tc.tid() + 1] : static_cast<std::uint32_t>(n);
            const InsertionCost cost = insertion_sort_pairs(
                std::span<T>{key_row + begin, key_row + end},
                std::span<T>{val_row + begin, val_row + end});
            tc.ops(cost.compares + cost.moves);
            tc.global_random(4ull * (end - begin));  // key+value load & store
            tc.shared(2);
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) { wc.for_lanes(insert_lane); });
    });

    stats.phase2 = {k.modeled_ms, k.wall_ms};
    stats.phase3_imbalance = k.imbalance;
    stats.peak_device_bytes = device.memory().peak_bytes_in_use();
    return stats;
}

}  // namespace

template <typename T>
SortStats sort_pairs_on_device(simt::Device& device, simt::DeviceBuffer<T>& keys,
                               simt::DeviceBuffer<T>& values, std::size_t num_arrays,
                               std::size_t array_size, const Options& opts) {
    if (keys.size() < num_arrays * array_size || values.size() < num_arrays * array_size) {
        throw std::invalid_argument("sort_pairs_on_device: buffers smaller than N x n");
    }
    if (num_arrays == 0 || array_size == 0) return {};
    auto key_span = keys.span().subspan(0, num_arrays * array_size);
    auto val_span = values.span().subspan(0, num_arrays * array_size);
    const bool descending = opts.order == SortOrder::Descending;
    SortStats extra;
    // Key+payload multiset checksums, taken host-side before any launch or
    // mutation (the descending negation included) so no injected fault can
    // poison the baseline; verified after the negate-back below.
    std::vector<std::uint64_t> expected;
    if (opts.verify_output) {
        expected = resilient::host_pair_row_checksums<T>(
            std::span<const T>(key_span), std::span<const T>(val_span), num_arrays,
            array_size);
    }
    if (descending) {
        const auto k = negate_on_device(device, key_span);
        extra.extra.modeled_ms += k.modeled_ms;
        extra.extra.wall_ms += k.wall_ms;
    }
    auto stats = fused_pair_sort(device, keys.span(), values.span(), num_arrays, array_size,
                                 opts, [array_size](std::size_t a) {
                                     return Extent{a * array_size, array_size};
                                 });
    if (descending) {
        const auto k = negate_on_device(device, key_span);
        extra.extra.modeled_ms += k.modeled_ms;
        extra.extra.wall_ms += k.wall_ms;
    }
    stats.extra = extra.extra;
    stats.verify = extra.verify;
    stats.data_bytes = 2 * num_arrays * array_size * sizeof(T);
    if (opts.verify_output) {
        const auto vc = resilient::verify_pair_rows_on_device<T>(
            device, std::span<const T>(key_span), std::span<const T>(val_span), num_arrays,
            array_size, opts.order, expected);
        stats.verify.modeled_ms += vc.modeled_ms;
        stats.verify.wall_ms += vc.wall_ms;
        if (!vc.ok()) {
            throw resilient::VerifyError("gpu_pair_sort", vc.unsorted, vc.mismatched);
        }
    }
    return stats;
}

template <typename T>
SortStats gpu_pair_sort(simt::Device& device, std::span<T> host_keys,
                        std::span<T> host_values, std::size_t num_arrays,
                        std::size_t array_size, const Options& opts) {
    if (host_keys.size() < num_arrays * array_size ||
        host_values.size() < num_arrays * array_size) {
        throw std::invalid_argument("gpu_pair_sort: host spans smaller than N x n");
    }
    SortStats stats;
    if (num_arrays == 0 || array_size == 0) return stats;
    simt::DeviceBuffer<T> keys(device, num_arrays * array_size);
    simt::DeviceBuffer<T> values(device, num_arrays * array_size);
    stats.h2d_ms = simt::copy_to_device(std::span<const T>(host_keys), keys) +
                   simt::copy_to_device(std::span<const T>(host_values), values);
    const double h2d = stats.h2d_ms;
    stats = sort_pairs_on_device(device, keys, values, num_arrays, array_size, opts);
    stats.h2d_ms = h2d;
    stats.d2h_ms = simt::copy_to_host(keys, host_keys) + simt::copy_to_host(values, host_values);
    return stats;
}

template <typename T>
SortStats sort_ragged_pairs_on_device(simt::Device& device, simt::DeviceBuffer<T>& keys,
                                      simt::DeviceBuffer<T>& values,
                                      std::span<const std::uint64_t> offsets,
                                      const Options& opts) {
    if (offsets.size() < 2) return {};
    const std::size_t num_arrays = offsets.size() - 1;
    std::size_t max_n = 0;
    for (std::size_t a = 0; a < num_arrays; ++a) {
        if (offsets[a + 1] < offsets[a]) {
            throw std::invalid_argument("sort_ragged_pairs_on_device: offsets not ascending");
        }
        max_n = std::max<std::size_t>(max_n, offsets[a + 1] - offsets[a]);
    }
    if (keys.size() < offsets[num_arrays] || values.size() < offsets[num_arrays]) {
        throw std::invalid_argument("sort_ragged_pairs_on_device: buffers too small");
    }
    auto key_span = keys.span().subspan(0, offsets[num_arrays]);
    auto val_span = values.span().subspan(0, offsets[num_arrays]);
    const bool descending = opts.order == SortOrder::Descending;
    SortStats extra;
    std::vector<std::uint64_t> expected;
    if (opts.verify_output) {
        expected = resilient::host_pair_csr_checksums<T>(
            std::span<const T>(key_span), std::span<const T>(val_span), offsets);
    }
    if (descending && !key_span.empty()) {
        const auto k = negate_on_device(device, key_span);
        extra.extra.modeled_ms += k.modeled_ms;
        extra.extra.wall_ms += k.wall_ms;
    }
    auto stats = fused_pair_sort(device, keys.span(), values.span(), num_arrays, max_n, opts,
                                 [offsets](std::size_t a) {
                                     return Extent{offsets[a], offsets[a + 1] - offsets[a]};
                                 });
    if (descending && !key_span.empty()) {
        const auto k = negate_on_device(device, key_span);
        extra.extra.modeled_ms += k.modeled_ms;
        extra.extra.wall_ms += k.wall_ms;
    }
    stats.extra = extra.extra;
    stats.verify = extra.verify;
    stats.data_bytes = 2 * offsets[num_arrays] * sizeof(T);
    if (opts.verify_output) {
        const auto vc = resilient::verify_pair_csr_on_device<T>(
            device, std::span<const T>(key_span), std::span<const T>(val_span), offsets,
            opts.order, expected);
        stats.verify.modeled_ms += vc.modeled_ms;
        stats.verify.wall_ms += vc.wall_ms;
        if (!vc.ok()) {
            throw resilient::VerifyError("gpu_ragged_pair_sort", vc.unsorted, vc.mismatched);
        }
    }
    return stats;
}

template <typename T>
SortStats gpu_ragged_pair_sort(simt::Device& device, std::span<T> host_keys,
                               std::span<T> host_values,
                               std::span<const std::uint64_t> offsets, const Options& opts) {
    SortStats stats;
    if (offsets.size() < 2) return stats;
    simt::DeviceBuffer<T> keys(device, host_keys.size());
    simt::DeviceBuffer<T> values(device, host_values.size());
    const double h2d = simt::copy_to_device(std::span<const T>(host_keys), keys) +
                       simt::copy_to_device(std::span<const T>(host_values), values);
    stats = sort_ragged_pairs_on_device(device, keys, values, offsets, opts);
    stats.h2d_ms = h2d;
    stats.d2h_ms = simt::copy_to_host(keys, host_keys) + simt::copy_to_host(values, host_values);
    return stats;
}

#define GAS_INSTANTIATE_PAIR(T)                                                            \
    template SortStats sort_pairs_on_device<T>(simt::Device&, simt::DeviceBuffer<T>&,      \
                                               simt::DeviceBuffer<T>&, std::size_t,        \
                                               std::size_t, const Options&);               \
    template SortStats gpu_pair_sort<T>(simt::Device&, std::span<T>, std::span<T>,         \
                                        std::size_t, std::size_t, const Options&);         \
    template SortStats sort_ragged_pairs_on_device<T>(                                     \
        simt::Device&, simt::DeviceBuffer<T>&, simt::DeviceBuffer<T>&,                     \
        std::span<const std::uint64_t>, const Options&);                                   \
    template SortStats gpu_ragged_pair_sort<T>(simt::Device&, std::span<T>, std::span<T>,  \
                                               std::span<const std::uint64_t>,             \
                                               const Options&);
GAS_INSTANTIATE_PAIR(float)
GAS_INSTANTIATE_PAIR(double)
#undef GAS_INSTANTIATE_PAIR

}  // namespace gas
