#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <type_traits>

#include "core/options.hpp"
#include "core/plan.hpp"
#include "simt/device.hpp"
#include "simt/graph.hpp"

namespace gas::detail {

/// A kernel launch described but not yet executed: exactly what
/// Device::launch takes, packaged so a caller can either launch it
/// directly (the loop path) or add it as a simt::Graph node (the
/// graph-launch path).  Spec bodies capture all state by value — spans,
/// plan scalars, a copy of the options — so a spec safely outlives the
/// builder's stack frame, which graph execution requires.
using KernelSpec = simt::KernelSpec;

/// Sentinel splitters of Definition 5's overlap fix: a value at-or-below
/// every element at splitter index 0 and one at-or-above everything at
/// index p.  Floating-point types use +-infinity; integral types use
/// lowest/max (the bucket-membership predicate keeps the extremes inside
/// the first/last buckets).
template <typename T>
[[nodiscard]] constexpr T low_sentinel() {
    if constexpr (std::is_floating_point_v<T>) {
        return -std::numeric_limits<T>::infinity();
    } else {
        return std::numeric_limits<T>::lowest();
    }
}

template <typename T>
[[nodiscard]] constexpr T high_sentinel() {
    if constexpr (std::is_floating_point_v<T>) {
        return std::numeric_limits<T>::infinity();
    } else {
        return std::numeric_limits<T>::max();
    }
}

/// Float aliases kept for existing call sites and tests.
inline constexpr float kLowSentinel = -std::numeric_limits<float>::infinity();
inline constexpr float kHighSentinel = std::numeric_limits<float>::infinity();

/// Bucket membership predicate.  Buckets partition by half-open intervals
/// (lo, hi], with bucket 0 inclusive at lo so that values equal to the low
/// sentinel (e.g. -inf, or 0 for unsigned types) are not lost.  Exactly one
/// bucket accepts each comparable element, including duplicates equal to a
/// splitter (they all land in the first bucket whose hi equals the value).
template <typename T>
[[nodiscard]] inline bool in_bucket(T x, T lo, T hi, bool first_bucket) {
    return (x > lo || (first_bucket && x == lo)) && x <= hi;
}

/// Phase 1 (section 5.1): per array, regular-sample, insertion-sort the
/// sample in shared memory, emit p - 1 interior splitters plus the two
/// sentinels into `splitters` (N rows of plan.splitters_per_array).
/// One thread per block, as the paper found optimal for the tiny sample.
template <typename T>
simt::KernelStats splitter_phase(simt::Device& device, std::span<const T> data,
                                 std::size_t num_arrays, const SortPlan& plan,
                                 std::span<T> splitters);

/// Spec builder behind splitter_phase: the same kernel as a graph node.
template <typename T>
KernelSpec splitter_phase_spec(std::span<const T> data, std::size_t num_arrays,
                               const SortPlan& plan, std::span<T> splitters);

/// Phase 2 (section 5.2): bucket each array by splitter pairs and write the
/// buckets back over the array in place; bucket sizes land in
/// `bucket_sizes` (N rows of plan.buckets).  `scratch` is a global staging
/// area of `scratch_rows` rows of n elements used only when the array does
/// not fit in shared memory (empty otherwise).
template <typename T>
simt::KernelStats bucket_phase(simt::Device& device, std::span<T> data,
                               std::size_t num_arrays, const SortPlan& plan,
                               const Options& opts, std::span<const T> splitters,
                               std::span<std::uint32_t> bucket_sizes, std::span<T> scratch,
                               std::size_t scratch_rows);

/// Spec builder behind bucket_phase: the same kernel as a graph node.
template <typename T>
KernelSpec bucket_phase_spec(std::span<T> data, std::size_t num_arrays,
                             const SortPlan& plan, const Options& opts,
                             std::span<const T> splitters,
                             std::span<std::uint32_t> bucket_sizes, std::span<T> scratch,
                             std::size_t scratch_rows);

/// Phase 3 (section 5.3): one thread per bucket runs in-place insertion sort
/// on its bucket; contiguous sorted buckets leave each array fully sorted
/// with no merge step.  With Options::hybrid_phase3 (the default) blocks
/// whose largest bucket exceeds the small cutoff switch to the skew-aware
/// hybrid sorter (size-binned scheduling, binary insertion, cooperative
/// bitonic — see hybrid_phase3.hpp); with it off the kernel is the paper's
/// one-lane-per-bucket insertion sort, bit-for-bit.
template <typename T>
simt::KernelStats sort_phase(simt::Device& device, std::span<T> data,
                             std::size_t num_arrays, const SortPlan& plan,
                             std::span<const std::uint32_t> bucket_sizes,
                             const Options& opts = {});

/// Spec builder behind sort_phase: the same kernel as a graph node.  Takes
/// the device properties by value (the hybrid dispatch consults SM limits)
/// since the body may run long after the builder's frame is gone.
template <typename T>
KernelSpec sort_phase_spec(simt::DeviceProperties props, std::span<T> data,
                           std::size_t num_arrays, const SortPlan& plan,
                           std::span<const std::uint32_t> bucket_sizes,
                           const Options& opts = {});

// Explicit instantiations live in the phase .cpp files.
#define GAS_DECLARE_PHASES(T)                                                              \
    extern template simt::KernelStats splitter_phase<T>(                                   \
        simt::Device&, std::span<const T>, std::size_t, const SortPlan&, std::span<T>);    \
    extern template simt::KernelStats bucket_phase<T>(                                     \
        simt::Device&, std::span<T>, std::size_t, const SortPlan&, const Options&,         \
        std::span<const T>, std::span<std::uint32_t>, std::span<T>, std::size_t);          \
    extern template simt::KernelStats sort_phase<T>(                                       \
        simt::Device&, std::span<T>, std::size_t, const SortPlan&,                         \
        std::span<const std::uint32_t>, const Options&);                                   \
    extern template KernelSpec splitter_phase_spec<T>(                                     \
        std::span<const T>, std::size_t, const SortPlan&, std::span<T>);                   \
    extern template KernelSpec bucket_phase_spec<T>(                                       \
        std::span<T>, std::size_t, const SortPlan&, const Options&, std::span<const T>,    \
        std::span<std::uint32_t>, std::span<T>, std::size_t);                              \
    extern template KernelSpec sort_phase_spec<T>(                                         \
        simt::DeviceProperties, std::span<T>, std::size_t, const SortPlan&,                \
        std::span<const std::uint32_t>, const Options&);

GAS_DECLARE_PHASES(float)
GAS_DECLARE_PHASES(double)
GAS_DECLARE_PHASES(std::uint32_t)
GAS_DECLARE_PHASES(std::int32_t)
#undef GAS_DECLARE_PHASES

}  // namespace gas::detail
