#include "core/ragged_sort.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/hybrid_phase3.hpp"
#include "core/insertion_sort.hpp"
#include "core/phases.hpp"
#include "core/resilient.hpp"
#include "core/warp_bucket.hpp"

namespace gas {

namespace {

/// Geometry of one ragged array under the shared options.
struct RowPlan {
    std::size_t n = 0;
    std::size_t p = 1;
    std::size_t sample = 1;
};

RowPlan row_plan(std::size_t n, const Options& opts, unsigned block_threads) {
    RowPlan r;
    r.n = n;
    if (n == 0) return r;
    r.p = std::clamp<std::size_t>(n / opts.bucket_target, 1, block_threads);
    r.sample = static_cast<std::size_t>(
        std::llround(opts.sampling_rate * static_cast<double>(n)));
    r.sample = std::min(std::max(r.sample, r.p), n);
    return r;
}

}  // namespace

SortStats sort_ragged_on_device(simt::Device& device, simt::DeviceBuffer<float>& values,
                                std::span<const std::uint64_t> offsets, const Options& opts) {
    SortStats stats;
    if (offsets.size() < 2) return stats;
    const std::size_t num_arrays = offsets.size() - 1;
    stats.num_arrays = num_arrays;

    std::size_t max_n = 0;
    for (std::size_t a = 0; a < num_arrays; ++a) {
        if (offsets[a + 1] < offsets[a]) {
            throw std::invalid_argument("sort_ragged_on_device: offsets not ascending");
        }
        max_n = std::max<std::size_t>(max_n, offsets[a + 1] - offsets[a]);
    }
    if (values.size() < offsets[num_arrays]) {
        throw std::invalid_argument("sort_ragged_on_device: values buffer too small");
    }
    stats.array_size = max_n;
    stats.data_bytes = offsets[num_arrays] * sizeof(float);
    if (max_n == 0) return stats;

    const auto& props = device.props();
    const std::size_t max_p =
        std::clamp<std::size_t>(max_n / opts.bucket_target, 1, props.max_threads_per_block);
    const auto block_threads = static_cast<unsigned>(max_p);
    stats.buckets_per_array = max_p;

    // Shared budget: staged array + splitters + counts + cursors + sample.
    const std::size_t shared_need =
        max_n * sizeof(float) + (max_p + 1) * sizeof(float) +
        2ull * block_threads * sizeof(std::uint32_t);
    if (shared_need > props.shared_memory_per_block) {
        throw std::invalid_argument(
            "sort_ragged_on_device: an array is too large for shared-memory staging (" +
            std::to_string(max_n) + " elements)");
    }

    auto data = values.span();

    // End-to-end verification (gas::resilient): host-side checksums before
    // the fused kernel (a poison-proof baseline — see host_csr_checksums),
    // sortedness + permutation check after.  The ragged driver sorts
    // ascending regardless of opts.order, so the check does too.
    std::vector<std::uint64_t> expected;
    if (opts.verify_output) {
        expected = resilient::host_csr_checksums<float>(std::span<const float>(data), offsets);
    }

    simt::LaunchConfig cfg{"gas.ragged_fused", static_cast<unsigned>(num_arrays), block_threads};
    const simt::KernelStats k = device.launch(cfg, [&](simt::BlockCtx& blk) {
        const std::size_t a = blk.block_idx();
        const std::size_t base = offsets[a];
        const std::size_t n = offsets[a + 1] - offsets[a];
        const RowPlan rp = row_plan(n, opts, block_threads);
        const std::size_t p = rp.p;

        auto sh_splitters = blk.shared_alloc<float>(p + 1);
        auto counts = blk.shared_alloc<std::uint32_t>(block_threads);
        auto starts = blk.shared_alloc<std::uint32_t>(block_threads);
        auto staged = blk.shared_alloc<float>(std::max<std::size_t>(n, 1));
        if (n == 0) return;
        float* array = data.data() + base;

        // Fused phase 1: sample, sort, pick splitters — all in shared memory.
        blk.single_thread([&](simt::ThreadCtx& tc) {
            const std::size_t stride = n / rp.sample;
            // Reuse the staging area's tail as the sample buffer before the
            // array itself is staged.
            std::span<float> sample = staged.subspan(0, rp.sample);
            for (std::size_t k2 = 0; k2 < rp.sample; ++k2) sample[k2] = array[k2 * stride];
            tc.global_random(rp.sample);
            tc.shared(rp.sample);
            const InsertionCost cost = insertion_sort(sample);
            tc.ops(cost.compares + cost.moves);
            tc.shared(2 * (cost.compares + cost.moves));
            sh_splitters[0] = detail::kLowSentinel;
            const std::size_t sstride = rp.sample / p;
            for (std::size_t j = 0; j + 1 < p; ++j) {
                sh_splitters[j + 1] = sample[(j + 1) * sstride];
            }
            sh_splitters[p] = detail::kHighSentinel;
            tc.shared(2 * p);
            tc.ops(p);
        });

        // Stage the array (cooperative, coalesced).
        const auto stage_lane = [&](simt::ThreadCtx& tc) {
            std::uint64_t copied = 0;
            for (std::size_t i = tc.tid(); i < n; i += block_threads) {
                staged[i] = array[i];
                ++copied;
            }
            tc.global_coalesced(copied * sizeof(float));
            tc.shared(copied);
            tc.ops(copied);
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) {
            if (wc.tracked()) {
                wc.for_lanes(stage_lane);
                return;
            }
            detail::warp_stage_rows(array, staged.data(), n, block_threads, wc.lane_begin(),
                                    wc.width());
            for (unsigned l = wc.lane_begin(); l < wc.lane_end(); ++l) {
                const std::uint64_t copied = detail::strided_count(n, l, block_threads);
                wc.coalesced_lane(l, copied * sizeof(float));
                wc.shared_lane(l, copied);
                wc.ops_lane(l, copied);
            }
        });

        // Fused phase 2: count, scan, write back in place.
        const auto count_lane = [&](simt::ThreadCtx& tc) {
            if (tc.tid() >= p) return;  // idle lanes on short arrays
            const float lo = sh_splitters[tc.tid()];
            const float hi = sh_splitters[tc.tid() + 1];
            std::uint32_t c = 0;
            for (std::size_t i = 0; i < n; ++i) {
                const float x = staged[i];
                c += detail::in_bucket(x, lo, hi, tc.tid() == 0) ? 1u : 0u;
            }
            counts[tc.tid()] = c;
            tc.shared(n + 3);
            tc.ops(n * 3);
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) {
            if (wc.tracked()) {
                wc.for_lanes(count_lane);
                return;
            }
            const unsigned wb = wc.lane_begin();
            if (wb >= p) return;  // fully idle warp on short arrays
            const auto w = static_cast<unsigned>(std::min<std::size_t>(wc.lane_end(), p)) - wb;
            detail::warp_count_buckets(staged.data(), n, sh_splitters.data(), wb, w,
                                       counts.data());
            for (unsigned k2 = 0; k2 < w; ++k2) {
                wc.shared_lane(wb + k2, n + 3);
                wc.ops_lane(wb + k2, n * 3);
            }
        });
        std::uint32_t k_max = 0;
        blk.single_thread([&](simt::ThreadCtx& tc) {
            std::uint32_t running = 0;
            std::uint64_t sum = 0;
            for (std::size_t j = 0; j < p; ++j) {
                starts[j] = running;
                const std::uint32_t c = counts[j];
                running += c;
                sum += c;
                if (opts.hybrid_phase3) k_max = std::max(k_max, c);
            }
#ifndef NDEBUG
            if (sum != n) {
                throw std::logic_error("gas.ragged_fused: bucket counts of array " +
                                       std::to_string(a) + " sum to " +
                                       std::to_string(sum) + ", expected " +
                                       std::to_string(n));
            }
#else
            (void)sum;
#endif
            tc.ops(opts.hybrid_phase3 ? 2 * p : p);
            tc.shared(2 * p);
        });
        const auto scatter_lane = [&](simt::ThreadCtx& tc) {
            if (tc.tid() >= p) return;
            const float lo = sh_splitters[tc.tid()];
            const float hi = sh_splitters[tc.tid() + 1];
            std::uint32_t cursor = starts[tc.tid()];
            for (std::size_t i = 0; i < n; ++i) {
                const float x = staged[i];
                if (detail::in_bucket(x, lo, hi, tc.tid() == 0)) array[cursor++] = x;
            }
            const std::uint64_t written = cursor - starts[tc.tid()];
            tc.shared(n + 2);
            tc.ops(n * 3);
            tc.global_coalesced(written * sizeof(float));
            tc.global_random(written > 0 ? 1 : 0);
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) {
            if (wc.tracked()) {
                wc.for_lanes(scatter_lane);
                return;
            }
            const unsigned wb = wc.lane_begin();
            if (wb >= p) return;
            const auto w = static_cast<unsigned>(std::min<std::size_t>(wc.lane_end(), p)) - wb;
            std::array<std::uint32_t, simt::kMaxWarpLanes> cur;
            for (unsigned k2 = 0; k2 < w; ++k2) cur[k2] = starts[wb + k2];
            const float* s = staged.data();
            detail::warp_scatter_buckets(
                s, n, sh_splitters.data(), p, wb, w, cur.data(),
                [&](std::uint32_t dst, std::size_t i) { array[dst] = s[i]; });
            for (unsigned k2 = 0; k2 < w; ++k2) {
                const std::uint64_t written = cur[k2] - starts[wb + k2];
                wc.shared_lane(wb + k2, n + 2);
                wc.ops_lane(wb + k2, n * 3);
                wc.coalesced_lane(wb + k2, written * sizeof(float));
                wc.random_lane(wb + k2, written > 0 ? 1 : 0);
            }
        });

        // Fused phase 3.  Skewed blocks hand over to the hybrid sorter
        // (size-binned scheduling + cooperative bitonic, see
        // hybrid_phase3.hpp); balanced blocks keep the paper's
        // one-lane-per-bucket insertion sort.
        if (opts.hybrid_phase3 && k_max > opts.phase3_small_cutoff) {
            detail::hybrid_phase3_block</*kPairs=*/false, float>(
                blk, props, blk.global_view(data.subspan(base, n)), /*values=*/{}, p,
                [&](std::size_t j) -> std::uint32_t {
                    return j < p ? starts[j] : static_cast<std::uint32_t>(n);
                },
                opts);
            return;
        }
        const auto insert_lane = [&](simt::ThreadCtx& tc) {
            if (tc.tid() >= p) return;
            const std::uint32_t begin = starts[tc.tid()];
            const std::uint32_t end =
                tc.tid() + 1 < p ? starts[tc.tid() + 1] : static_cast<std::uint32_t>(n);
            const std::span<float> bucket{array + begin, array + end};
            const InsertionCost cost = insertion_sort(bucket);
            tc.ops(cost.compares + cost.moves);
            tc.global_random(2ull * bucket.size());
            tc.shared(2);
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) { wc.for_lanes(insert_lane); });
    });

    stats.phase2 = {k.modeled_ms, k.wall_ms};  // fused kernel reported as one phase
    stats.phase3_imbalance = k.imbalance;
    stats.peak_device_bytes = device.memory().peak_bytes_in_use();
    if (opts.verify_output) {
        const auto vc = resilient::verify_csr_on_device<float>(
            device, std::span<const float>(data), offsets, SortOrder::Ascending, expected);
        stats.verify.modeled_ms += vc.modeled_ms;
        stats.verify.wall_ms += vc.wall_ms;
        if (!vc.ok()) {
            throw resilient::VerifyError("gpu_ragged_sort", vc.unsorted, vc.mismatched);
        }
    }
    return stats;
}

SortStats gpu_ragged_sort(simt::Device& device, std::span<float> host_values,
                          std::span<const std::uint64_t> offsets, const Options& opts) {
    SortStats stats;
    if (offsets.size() < 2) return stats;
    simt::DeviceBuffer<float> values(device, host_values.size());
    const double h2d = simt::copy_to_device(std::span<const float>(host_values), values);
    stats = sort_ragged_on_device(device, values, offsets, opts);
    stats.h2d_ms = h2d;
    stats.d2h_ms = simt::copy_to_host(values, host_values);
    return stats;
}

}  // namespace gas
