#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/options.hpp"
#include "core/plan.hpp"
#include "core/sort_stats.hpp"
#include "simt/device.hpp"
#include "simt/device_buffer.hpp"
#include "simt/graph.hpp"

namespace gas {

/// A built-once, submit-many uniform sort pipeline (DESIGN.md section 14).
///
/// gpu_array_sort's graph path rebuilds the same (negate) -> phase1 ->
/// phase2 -> dispatch -> phase3 (-> negate) simt::Graph — and reallocates
/// the S/Z/scratch temporaries — for every call, even though consecutive
/// serve batches with the same shape produce an identical static graph over
/// identical device spans.  This holder builds that graph once for a fixed
/// (data span, num_arrays, array_size, options) tuple and resubmits it per
/// batch: Device::submit resets the graph's runtime state, the dispatch
/// host node re-enqueues phase 3 from settled bucket sizes each run, and
/// the temporaries stay allocated between runs.
///
/// Bit-identity: each run() executes the exact node sequence a fresh
/// gpu_array_sort graph launch would, over the same spans, so the sorted
/// bytes and every deterministic KernelStats field match call-for-call
/// (tests/serve/test_graph_cache.cpp pins this).
///
/// The holder handles the fused serve path only: float data, no
/// validate/verify_output/collect_bucket_sizes (those need per-call host
/// state; callers keep the one-shot path for them).  Throws
/// std::invalid_argument when asked for an unsupported combination.
class UniformSortGraph {
  public:
    /// Builds the pipeline over `data` (device span, holding at least
    /// num_arrays x array_size elements starting where the caller will stage
    /// every subsequent batch).  `opts.graph_launch` must be on.
    UniformSortGraph(simt::Device& device, std::span<float> data,
                     std::size_t num_arrays, std::size_t array_size,
                     const Options& opts);

    UniformSortGraph(const UniformSortGraph&) = delete;
    UniformSortGraph& operator=(const UniformSortGraph&) = delete;

    /// Resubmits the graph over the current contents of the data span.
    /// Returns the same SortStats a fresh gpu_array_sort graph launch over
    /// those bytes would.
    SortStats run();

    /// True when this holder was built for exactly this shape: same device
    /// span (data pointer AND size), geometry and sort-shaping options — the
    /// serve cache-hit predicate.
    [[nodiscard]] bool matches(const simt::Device& device, std::span<const float> data,
                               std::size_t num_arrays, std::size_t array_size,
                               const Options& opts) const;

    [[nodiscard]] const SortPlan& plan() const { return plan_; }
    [[nodiscard]] std::size_t runs() const { return runs_; }

  private:
    simt::Device* device_;
    std::span<float> span_;
    std::size_t num_arrays_;
    std::size_t array_size_;
    Options opts_;
    SortPlan plan_;
    bool descending_ = false;

    // Temporaries alive for the holder's lifetime (the reuse win: no
    // realloc per batch).  Empty on the small-array path.
    simt::DeviceBuffer<float> splitters_;
    simt::DeviceBuffer<std::uint32_t> bucket_sizes_;
    simt::DeviceBuffer<float> scratch_;

    simt::Graph graph_;
    // Small-array path (plan.buckets == 1): one packed insertion-sort node.
    bool small_path_ = false;
    simt::Graph::NodeId small_node_ = 0;
    std::vector<simt::Graph::NodeId> negate_nodes_;
    // Three-phase path.
    simt::Graph::NodeId n1_ = 0;
    simt::Graph::NodeId n2_ = 0;
    simt::Graph::NodeId pre_ = 0;
    bool has_negate_ = false;
    std::shared_ptr<simt::Graph::NodeId> n3_;
    std::shared_ptr<simt::Graph::NodeId> post_;

    std::size_t runs_ = 0;
};

}  // namespace gas
