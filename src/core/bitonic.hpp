#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

namespace gas::detail {

/// Bitonic sorting-network schedule shared by the cooperative shared-memory
/// phase-3 path and its host-side reference (tests execute exactly the
/// schedule the kernel does).  The network sorts m = 2^L elements in
/// L(L+1)/2 compare-exchange steps; each step is one barrier-delimited
/// thread region of m/2 independent pairs, so the whole block cooperates on
/// one oversized bucket instead of serializing it onto a single lane.

/// Smallest power of two >= k (k = 0 maps to 1).  The staged buffer is
/// padded to this size with high sentinels; descending sub-merges route
/// real values through the padding slots, so the padding must be physical —
/// a virtual "pretend it is +inf" tail would be overwritten.
[[nodiscard]] constexpr std::size_t bitonic_padded_size(std::size_t k) {
    std::size_t m = 1;
    while (m < k) m <<= 1;
    return m;
}

[[nodiscard]] constexpr std::size_t bitonic_log2(std::size_t m) {
    std::size_t l = 0;
    while ((std::size_t{1} << l) < m) ++l;
    return l;
}

/// Number of compare-exchange steps (thread regions) for an m-element run.
[[nodiscard]] constexpr std::size_t bitonic_step_count(std::size_t m) {
    const std::size_t levels = bitonic_log2(m);
    return levels * (levels + 1) / 2;
}

/// Pair `pr` of the step with compare distance `d` (a power of two) touches
/// elements (i, i + d): pairs tile the array in 2d-element groups, d pairs
/// per group.
struct BitonicPair {
    std::uint32_t i;
    std::uint32_t j;
};

[[nodiscard]] constexpr BitonicPair bitonic_pair(std::uint32_t pr, std::uint32_t d) {
    const std::uint32_t g = pr / d;
    const std::uint32_t r = pr - g * d;
    const std::uint32_t i = 2 * d * g + r;
    return {i, i + d};
}

/// Bank-stagger rule for sub-warp compare distances (DESIGN.md section 8).
///
/// Under the lockstep shared-memory model, the warp co-issues the t-th
/// shared access of each lane.  For d >= 32 the i-side addresses of any 32
/// consecutive pairs are already congruent to 32 consecutive words, so both
/// access slots tile all banks.  For d < 32 they collide pairwise (i and
/// i + d fall in the same 2d-aligned window twice per 32 words); the fix is
/// access *order*: lanes in the upper half of each 32-pair window touch
/// their j-side element first.  The map g -> (2g + swap(g)) mod (32/d) over
/// pair-groups is then a bijection, so every co-issue slot again sees 32
/// distinct banks — for any contiguous pair window, aligned or not.
[[nodiscard]] constexpr bool bitonic_swap_first(std::uint32_t pr, std::uint32_t d) {
    if (d >= 32) return false;
    const std::uint32_t groups_per_window = 32 / d;
    return ((pr / d) % groups_per_window) >= groups_per_window / 2;
}

/// Invokes fn(kk, d) for every step of the m-element network in schedule
/// order: merge sizes kk = 2, 4, ..., m; within each, distances d = kk/2
/// down to 1.  Sorting direction of pair (i, i+d) is ascending iff
/// (i & kk) == 0 — the standard full-array-ascending bitonic recursion.
template <typename F>
constexpr void bitonic_for_each_step(std::size_t m, F&& fn) {
    for (std::size_t kk = 2; kk <= m; kk <<= 1) {
        for (std::size_t d = kk >> 1; d >= 1; d >>= 1) {
            fn(kk, d);
        }
    }
}

/// Host-side reference: sorts a[0..a.size()) ascending by executing the
/// exact schedule above sequentially.  a.size() must be a power of two
/// (callers pad with high sentinels first).  Generic over the sequence type
/// like insertion_sort_seq.
template <typename Seq>
void bitonic_sort_network(Seq a) {
    using T = typename Seq::value_type;
    const std::size_t m = a.size();
    if (m < 2) return;
    bitonic_for_each_step(m, [&](std::size_t kk, std::size_t d) {
        for (std::uint32_t pr = 0; pr < m / 2; ++pr) {
            const auto [i, j] = bitonic_pair(pr, static_cast<std::uint32_t>(d));
            const bool up = (i & kk) == 0;
            const T x = a[i];
            const T y = a[j];
            const bool exchange = up ? (y < x) : (x < y);
            a[i] = exchange ? y : x;
            a[j] = exchange ? x : y;
        }
    });
}

}  // namespace gas::detail
