#include <stdexcept>
#include <string>

#include "core/hybrid_phase3.hpp"
#include "core/insertion_sort.hpp"
#include "core/phases.hpp"

namespace gas::detail {

template <typename T>
KernelSpec sort_phase_spec(simt::DeviceProperties props, std::span<T> data,
                           std::size_t num_arrays, const SortPlan& plan,
                           std::span<const std::uint32_t> bucket_sizes,
                           const Options& opts) {
    const std::size_t n = plan.array_size;
    const std::size_t p = plan.buckets;

    simt::LaunchConfig cfg{"gas.phase3_sort", static_cast<unsigned>(num_arrays),
                           static_cast<unsigned>(p)};
    auto kernel = [=](simt::BlockCtx& blk) {
        auto offsets = blk.shared_alloc<std::uint32_t>(p + 1);
        const std::size_t a = blk.block_idx();
        auto array = blk.global_view(data.subspan(a * n, n));
        auto z_row = blk.global_view(bucket_sizes.subspan(a * p, p));

        // Region 1: thread 0 derives the bucket pointers from Z (the kernel
        // receives Z and computes starting/ending pointers per section 5.3).
        // The hybrid path additionally tracks the largest bucket to pick its
        // code path; a corrupt Z row (sum != n) fails loudly in debug builds
        // before any bucket is indexed.
        std::uint32_t k_max = 0;
        blk.single_thread([&](simt::ThreadCtx& tc) {
            std::uint32_t running = 0;
            std::uint64_t sum = 0;
            for (std::size_t j = 0; j < p; ++j) {
                offsets[j] = running;
                const std::uint32_t z = z_row[j];
                running += z;
                sum += z;
                if (opts.hybrid_phase3) k_max = std::max(k_max, z);
            }
            offsets[p] = running;
#ifndef NDEBUG
            if (sum != n) {
                throw std::logic_error("gas.phase3_sort: Z row of array " +
                                       std::to_string(a) + " sums to " +
                                       std::to_string(sum) + ", expected " +
                                       std::to_string(n));
            }
#else
            (void)sum;
#endif
            tc.global_coalesced(p * sizeof(std::uint32_t));
            tc.shared(p + 1);
            tc.ops(opts.hybrid_phase3 ? 2 * p : p);
        });

        if (opts.hybrid_phase3 && k_max > opts.phase3_small_cutoff) {
            hybrid_phase3_block</*kPairs=*/false, T>(
                blk, props, array, /*values=*/{}, p,
                [&](std::size_t j) -> std::uint32_t { return offsets[j]; }, opts);
            return;
        }

        // Region 2 (legacy / all-tiny fast path): thread j insertion-sorts
        // bucket j in place.  Because the buckets of one array are
        // contiguous, the concatenation of sorted buckets is the sorted
        // array — no merge phase (sample-sort property).  Memory model:
        // each element is fetched and stored once from DRAM (scattered
        // across lanes); the sort's shuffles then hit cache, so they cost
        // ALU/latency (ops) only.
        const auto sort_lane = [&](simt::ThreadCtx& tc) {
            const std::size_t j = tc.tid();
            const std::uint32_t begin = offsets[j];
            const std::uint32_t end = offsets[j + 1];
            const auto bucket = array.subspan(begin, end - begin);
            const InsertionCost cost = insertion_sort_seq(bucket);
            tc.ops(cost.compares + cost.moves);
            tc.global_random(2ull * bucket.size());
            tc.shared(2);
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) { wc.for_lanes(sort_lane); });
    };
    return {cfg, std::move(kernel)};
}

template <typename T>
simt::KernelStats sort_phase(simt::Device& device, std::span<T> data,
                             std::size_t num_arrays, const SortPlan& plan,
                             std::span<const std::uint32_t> bucket_sizes,
                             const Options& opts) {
    KernelSpec spec =
        sort_phase_spec(device.props(), data, num_arrays, plan, bucket_sizes, opts);
    return device.launch(spec.cfg, spec.body);
}

#define GAS_INSTANTIATE(T)                                                                 \
    template simt::KernelStats sort_phase<T>(simt::Device&, std::span<T>, std::size_t,     \
                                             const SortPlan&,                              \
                                             std::span<const std::uint32_t>,               \
                                             const Options&);                              \
    template KernelSpec sort_phase_spec<T>(simt::DeviceProperties, std::span<T>,           \
                                           std::size_t, const SortPlan&,                   \
                                           std::span<const std::uint32_t>,                 \
                                           const Options&);
GAS_INSTANTIATE(float)
GAS_INSTANTIATE(double)
GAS_INSTANTIATE(std::uint32_t)
GAS_INSTANTIATE(std::int32_t)
#undef GAS_INSTANTIATE

}  // namespace gas::detail
