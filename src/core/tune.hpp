#pragma once

#include <cstddef>

#include "simt/device_properties.hpp"

namespace gas {

/// Cutover thresholds of the hybrid phase-3 sorter (Options defaults come
/// from tune_sort_phase on the modeled K40c).
struct Phase3Tuning {
    std::size_t small_cutoff = 0;    ///< <= this: plain insertion, legacy path
    std::size_t bitonic_cutoff = 0;  ///< > this: cooperative bitonic candidate
};

/// Modeled lane-cycles of one plain insertion sort of a k-element bucket
/// (expected compares + moves on shuffled input, weighted by the device's
/// cpi).  This is the cost-model mirror used both for autotuning the static
/// cutoffs and for the kernel's per-block cooperative-vs-serial decision.
[[nodiscard]] double modeled_insertion_cycles(std::size_t k,
                                              const simt::DeviceProperties& props);

/// Same for binary insertion: O(k log k) compares + O(k^2/4) moves.
[[nodiscard]] double modeled_binary_insertion_cycles(std::size_t k,
                                                     const simt::DeviceProperties& props);

/// Modeled per-lane cycles of the cooperative bitonic path for one bucket:
/// staging + L(L+1)/2 compare-exchange regions + write-back, with the
/// bucket padded to m = 2^L and the pairs strided over `block_threads`
/// lanes.  Because every lane does (nearly) the same work, this is also
/// what the block's warps each pay.
[[nodiscard]] double modeled_bitonic_cycles(std::size_t k, unsigned block_threads,
                                            const simt::DeviceProperties& props);

/// Chooses the hybrid cutovers for a device:
///  * small_cutoff — where binary insertion's modeled saving over plain
///    insertion clears the scheduling pass, floored at `6 * bucket_target`
///    so buckets a healthy regular sample produces (the paper's uniform
///    operating point tops out near that multiple of the 20-element target)
///    never leave the classic path;
///  * bitonic_cutoff — where the modeled network beats one serialized lane,
///    floored at 2 * small_cutoff (below that, binned binary insertion
///    keeps whole warps busy without any shared scratch).
[[nodiscard]] Phase3Tuning tune_sort_phase(const simt::DeviceProperties& props,
                                           unsigned block_threads = 32,
                                           std::size_t bucket_target = 20);

}  // namespace gas
