#pragma once

#include <cstdint>
#include <span>

#include "core/options.hpp"
#include "core/sort_stats.hpp"
#include "simt/device.hpp"
#include "simt/device_buffer.hpp"

namespace gas {

/// Extension beyond the paper's uniform-n datasets: sorts N arrays of
/// *varying* sizes stored CSR-style (`offsets` has N+1 entries; array i
/// occupies values[offsets[i], offsets[i+1])), in place on the device.
///
/// Implementation note: because each block owns one array end to end, the
/// three phases fuse into a single kernel whose splitters, counts and bucket
/// offsets never leave shared memory — zero temporary global memory, an even
/// stronger in-place property than the uniform driver.  Requires every array
/// to fit the 48 KB shared staging area (about 10k floats after bookkeeping);
/// throws std::invalid_argument otherwise.
SortStats sort_ragged_on_device(simt::Device& device, simt::DeviceBuffer<float>& values,
                                std::span<const std::uint64_t> offsets,
                                const Options& opts = {});

/// Host convenience wrapper (upload, sort, download).
SortStats gpu_ragged_sort(simt::Device& device, std::span<float> host_values,
                          std::span<const std::uint64_t> offsets, const Options& opts = {});

}  // namespace gas
