#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/bitonic.hpp"
#include "core/insertion_sort.hpp"
#include "core/options.hpp"
#include "core/phases.hpp"
#include "core/tune.hpp"
#include "core/warp_bucket.hpp"
#include "simt/kernel.hpp"

namespace gas::detail {

/// Hybrid skew-aware phase-3 driver (DESIGN.md section 8), shared by the
/// standalone phase-3 kernel and the fused ragged / pair kernels.  Runs the
/// non-trivial path only: callers keep their legacy single-region bucket
/// sort for blocks whose largest bucket is at or below the small cutoff
/// (and, bit-for-bit, whenever Options::hybrid_phase3 is off).
///
/// Three size classes per bucket:
///  * tiny  (k <= phase3_small_cutoff):   classic one-lane insertion sort
///  * mid   (k <= phase3_bitonic_cutoff): one-lane binary insertion sort
///  * large (otherwise, if the padded run fits the remaining shared arena):
///    cooperative bitonic network over a staged shared copy
///
/// A one-lane counting pass over the bucket table bins buckets by class
/// into (begin, size) schedule rows — warps then execute homogeneous work
/// (size-binned scheduling), and the schedule rows are read back with
/// lane-consecutive indices so the pass itself is bank-conflict free.  The
/// large class is settled by a per-block cost-model cutover: cooperative
/// network cycles vs. the binned serial alternative, using the same
/// formulas tune_sort_phase uses for the static defaults.
///
/// `boundary(j)` (j in [0, p]) returns bucket boundary j, reading it
/// through the caller's tracked view so the sanitizer observes the access;
/// the driver charges the scheduling pass for those reads.

struct BucketRange {
    std::uint32_t begin = 0;
    std::uint32_t size = 0;
};

template <bool kPairs, typename T, typename BoundaryFn>
inline void hybrid_phase3_block(simt::BlockCtx& blk, const simt::DeviceProperties& props,
                                simt::sanitize::TrackedSpan<T> keys,
                                simt::sanitize::TrackedSpan<T> values, std::size_t p,
                                const BoundaryFn& boundary, const Options& opts) {
    const unsigned lanes = blk.block_dim();
    auto sched_begin = blk.shared_alloc<std::uint32_t>(p);
    auto sched_size = blk.shared_alloc<std::uint32_t>(p);

    constexpr std::uint64_t kPlanes = kPairs ? 2 : 1;
    constexpr std::size_t kSlack = 16;  // bump-allocator alignment headroom
    const std::size_t used = blk.shared_used() + kSlack;
    const std::size_t free_bytes =
        props.shared_memory_per_block > used ? props.shared_memory_per_block - used : 0;
    const std::size_t capacity = free_bytes / (kPlanes * sizeof(T));

    const auto class_of = [&](std::uint32_t k) -> unsigned {
        if (k <= opts.phase3_small_cutoff) return 0;
        if (k <= opts.phase3_bitonic_cutoff || bitonic_padded_size(k) > capacity) return 1;
        return 2;
    };

    // Scheduling pass (one lane): classify buckets, counting-sort the
    // (begin, size) rows by class — tiny, mid, large — and run the
    // cost-model cutover for the large class.
    std::vector<BucketRange> large;
    bool cooperative = false;
    std::size_t scratch_elems = 0;
    std::size_t seq_buckets = p;
    blk.single_thread([&](simt::ThreadCtx& tc) {
        std::vector<BucketRange> ranges(p);
        std::uint32_t class_count[3] = {0, 0, 0};
        std::uint32_t prev = boundary(0);
        for (std::size_t j = 0; j < p; ++j) {
            const std::uint32_t next = boundary(j + 1);
#ifndef NDEBUG
            if (next < prev) {
                throw std::logic_error("hybrid phase 3: bucket table not monotone");
            }
#endif
            ranges[j] = {prev, next - prev};
            ++class_count[class_of(ranges[j].size)];
            prev = next;
        }
        std::uint32_t cursor[3] = {0, class_count[0],
                                   class_count[0] + class_count[1]};
        for (std::size_t j = 0; j < p; ++j) {
            const unsigned c = class_of(ranges[j].size);
            sched_begin[cursor[c]] = ranges[j].begin;
            sched_size[cursor[c]] = ranges[j].size;
            ++cursor[c];
            if (c == 2) large.push_back(ranges[j]);
        }
        // p+1 boundary reads, p size re-reads for the placement pass, 2p
        // schedule writes; classify + count + place is ~6 ops per bucket.
        tc.shared(4 * p + 1);
        tc.ops(6 * p);

        if (!large.empty()) {
            double coop_cycles = 0.0;
            double serial_cycles = 0.0;
            double group_max = 0.0;
            unsigned in_group = 0;
            for (const BucketRange& b : large) {
                coop_cycles += modeled_bitonic_cycles(b.size, lanes, props);
                group_max =
                    std::max(group_max, modeled_binary_insertion_cycles(b.size, props));
                if (++in_group == props.warp_size) {
                    serial_cycles += group_max;  // serial larges share a warp:
                    group_max = 0.0;             // each warp pays its slowest lane
                    in_group = 0;
                }
                scratch_elems = std::max(scratch_elems, bitonic_padded_size(b.size));
            }
            serial_cycles += group_max;
            cooperative = coop_cycles < serial_cycles;
            tc.ops(4 * large.size());
        }
        if (cooperative) seq_buckets = p - large.size();
    });

    // Serial classes: lane t sorts schedule row t.  Same-class rows are
    // adjacent, so each warp's lanes run the same algorithm on same-class
    // sizes instead of idling behind one oversized bucket.
    const auto serial_lane = [&](simt::ThreadCtx& tc) {
        const std::size_t t = tc.tid();
        if (t >= seq_buckets) return;
        const std::uint32_t begin = sched_begin[t];
        const std::uint32_t k = sched_size[t];
        tc.shared(2);
        tc.ops(2);
        InsertionCost cost;
        if constexpr (kPairs) {
            cost = k <= opts.phase3_small_cutoff
                       ? insertion_sort_pairs_seq(keys.subspan(begin, k),
                                                  values.subspan(begin, k))
                       : binary_insertion_sort_pairs_seq(keys.subspan(begin, k),
                                                         values.subspan(begin, k));
        } else {
            cost = k <= opts.phase3_small_cutoff
                       ? insertion_sort_seq(keys.subspan(begin, k))
                       : binary_insertion_sort_seq(keys.subspan(begin, k));
        }
        tc.ops(cost.compares + cost.moves);
        tc.global_random(2 * kPlanes * k);
    };
    blk.for_each_warp([&](simt::WarpCtx& wc) { wc.for_lanes(serial_lane); });

    if (!cooperative || large.empty()) return;

    // Cooperative bitonic path: the whole block sorts each large bucket in
    // shared memory, padded to a power of two with high sentinels.  Every
    // compare-exchange writes both elements unconditionally and follows the
    // bitonic_swap_first access order, so each co-issued access slot of a
    // warp touches 32 distinct banks (verified by the bankcheck workload).
    simt::sanitize::TrackedSpan<T> staged_k = blk.shared_alloc<T>(scratch_elems);
    simt::sanitize::TrackedSpan<T> staged_v;
    if constexpr (kPairs) staged_v = blk.shared_alloc<T>(scratch_elems);

    for (const BucketRange& b : large) {
        const std::uint32_t k = b.size;
        const std::uint32_t begin = b.begin;
        const std::size_t m = bitonic_padded_size(k);

        const auto stage_lane = [&](simt::ThreadCtx& tc) {  // stage + pad
            std::uint64_t iters = 0;
            std::uint64_t loaded = 0;
            for (std::size_t e = tc.tid(); e < m; e += lanes) {
                if (e < k) {
                    staged_k[e] = static_cast<T>(keys[begin + e]);
                    if constexpr (kPairs) staged_v[e] = static_cast<T>(values[begin + e]);
                    ++loaded;
                } else {
                    staged_k[e] = high_sentinel<T>();
                    if constexpr (kPairs) staged_v[e] = T{};
                }
                ++iters;
            }
            tc.ops(2 * iters);
            tc.shared(kPlanes * iters);
            tc.global_coalesced(loaded * kPlanes * sizeof(T));
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) {
            if (wc.tracked()) {
                wc.for_lanes(stage_lane);
                return;
            }
            const unsigned wb = wc.lane_begin();
            const unsigned w = wc.width();
            T* sk = staged_k.data();
            T* sv = kPairs ? staged_v.data() : nullptr;
            const T* kin = keys.data() + begin;
            const T* vin = kPairs ? values.data() + begin : nullptr;
            for (std::size_t base = wb; base < m; base += lanes) {
                const std::size_t count = std::min<std::size_t>(w, m - base);
                for (std::size_t e = base; e < base + count; ++e) {
                    if (e < k) {
                        sk[e] = kin[e];
                        if constexpr (kPairs) sv[e] = vin[e];
                    } else {
                        sk[e] = high_sentinel<T>();
                        if constexpr (kPairs) sv[e] = T{};
                    }
                }
            }
            for (unsigned l = wb; l < wb + w; ++l) {
                const std::uint64_t iters = strided_count(m, l, lanes);
                const std::uint64_t loaded = strided_count(k, l, lanes);
                wc.ops_lane(l, 2 * iters);
                wc.shared_lane(l, kPlanes * iters);
                wc.coalesced_lane(l, loaded * kPlanes * sizeof(T));
            }
        });

        bitonic_for_each_step(m, [&](std::size_t kk, std::size_t dist) {
            const auto d32 = static_cast<std::uint32_t>(dist);
            const auto step_lane = [&](simt::ThreadCtx& tc) {
                std::uint64_t pairs = 0;
                for (std::uint32_t pr = tc.tid(); pr < m / 2; pr += lanes) {
                    const auto [i, j] = bitonic_pair(pr, d32);
                    const bool up = (i & kk) == 0;
                    const bool j_first = bitonic_swap_first(pr, d32);
                    const std::uint32_t a0 = j_first ? j : i;
                    const std::uint32_t a1 = j_first ? i : j;
                    const T x0 = staged_k[a0];
                    const T x1 = staged_k[a1];
                    const T xi = j_first ? x1 : x0;
                    const T xj = j_first ? x0 : x1;
                    const bool exchange = up ? (xj < xi) : (xi < xj);
                    const T ni = exchange ? xj : xi;
                    const T nj = exchange ? xi : xj;
                    staged_k[a0] = j_first ? nj : ni;
                    staged_k[a1] = j_first ? ni : nj;
                    if constexpr (kPairs) {
                        const T v0 = staged_v[a0];
                        const T v1 = staged_v[a1];
                        const T vi = j_first ? v1 : v0;
                        const T vj = j_first ? v0 : v1;
                        staged_v[a0] = j_first ? (exchange ? vi : vj)
                                               : (exchange ? vj : vi);
                        staged_v[a1] = j_first ? (exchange ? vj : vi)
                                               : (exchange ? vi : vj);
                    }
                    ++pairs;
                }
                tc.ops((kPairs ? 10 : 8) * pairs);
                tc.shared((kPairs ? 8 : 4) * pairs);
            };
            blk.for_each_warp([&](simt::WarpCtx& wc) {
                if (wc.tracked()) {
                    wc.for_lanes(step_lane);
                    return;
                }
                // Lanes of one warp touch disjoint pairs, so the pr order
                // within the warp is free; run each strided round as one
                // contiguous sweep over raw shared storage.
                const unsigned wb = wc.lane_begin();
                const unsigned w = wc.width();
                T* sk = staged_k.data();
                [[maybe_unused]] T* sv = kPairs ? staged_v.data() : nullptr;
                const std::size_t half = m / 2;
                for (std::size_t base = wb; base < half; base += lanes) {
                    const std::size_t count = std::min<std::size_t>(w, half - base);
                    for (std::size_t e = base; e < base + count; ++e) {
                        const auto pr = static_cast<std::uint32_t>(e);
                        const auto [i, j] = bitonic_pair(pr, d32);
                        const bool up = (i & kk) == 0;
                        const T xi = sk[i];
                        const T xj = sk[j];
                        const bool exchange = up ? (xj < xi) : (xi < xj);
                        if (exchange) {
                            sk[i] = xj;
                            sk[j] = xi;
                            if constexpr (kPairs) std::swap(sv[i], sv[j]);
                        }
                    }
                }
                for (unsigned l = wb; l < wb + w; ++l) {
                    const std::uint64_t pairs = strided_count(half, l, lanes);
                    wc.ops_lane(l, (kPairs ? 10 : 8) * pairs);
                    wc.shared_lane(l, (kPairs ? 8 : 4) * pairs);
                }
            });
        });

        const auto unstage_lane = [&](simt::ThreadCtx& tc) {  // write back, coalesced
            std::uint64_t iters = 0;
            for (std::size_t e = tc.tid(); e < k; e += lanes) {
                keys[begin + e] = static_cast<T>(staged_k[e]);
                if constexpr (kPairs) values[begin + e] = static_cast<T>(staged_v[e]);
                ++iters;
            }
            tc.ops(iters);
            tc.shared(kPlanes * iters);
            tc.global_coalesced(iters * kPlanes * sizeof(T));
        };
        blk.for_each_warp([&](simt::WarpCtx& wc) {
            if (wc.tracked()) {
                wc.for_lanes(unstage_lane);
                return;
            }
            const unsigned wb = wc.lane_begin();
            const unsigned w = wc.width();
            warp_stage_rows(staged_k.data(), keys.data() + begin, k, lanes, wb, w);
            if constexpr (kPairs) {
                warp_stage_rows(staged_v.data(), values.data() + begin, k, lanes, wb, w);
            }
            for (unsigned l = wb; l < wb + w; ++l) {
                const std::uint64_t iters = strided_count(k, l, lanes);
                wc.ops_lane(l, iters);
                wc.shared_lane(l, kPlanes * iters);
                wc.coalesced_lane(l, iters * kPlanes * sizeof(T));
            }
        });
    }
}

}  // namespace gas::detail
