#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>

#include "core/phases.hpp"
#include "simt/kernel.hpp"

namespace gas::detail {

/// Element-major warp bodies shared by the bucketing kernels
/// (gas.phase2_bucketing and the fused ragged/pair kernels).
///
/// The scalar interpreter runs the paper's lane-major loops: every lane
/// re-reads the whole staged array against its own splitter pair (p * n
/// element visits per block).  Under ExecMode::Warp these helpers flip the
/// loop nest: one pass over the staged array per *warp*, with a tight
/// (SIMD-friendly) inner loop across the warp's <= 32 lanes — `ceil(p/32) *
/// n` visits instead of `p * n`.  Byte-for-byte equivalence with the scalar
/// loops holds because
///  * the bucket intervals (sp[j], sp[j+1]] partition the key space under
///    monotone splitters, so at most one lane matches each element and the
///    in-place writes land at identical positions in identical order, and
///  * elements no bucket accepts (NaN keys fail every comparison) are
///    re-checked against the owning pair and dropped, exactly as the
///    per-lane predicate scan drops them.
/// These run only with the sanitizer detached: tracked launches take the
/// lane-major reference body so shadow lane attribution stays exact.

/// Destination bucket of `x` under monotone boundaries sp[0..p]: the first
/// j with x <= sp[j+1] (the first bucket whose hi admits the value, which
/// is where duplicates equal to a splitter land).  The caller must confirm
/// membership with in_bucket before writing — incomparable values (NaN)
/// resolve to 0 here but belong to no bucket.
template <typename T>
[[nodiscard]] inline std::size_t bucket_index(const T* sp, std::size_t p, T x) {
    const T* it = std::lower_bound(sp + 1, sp + p, x);
    return static_cast<std::size_t>(it - (sp + 1));
}

/// Elements the cooperative lane-strided loop (i = lane, lane + threads,
/// ...) assigns to global lane `lane` of an n-element array.
[[nodiscard]] inline std::uint64_t strided_count(std::size_t n, unsigned lane,
                                                 unsigned threads) {
    return lane < n ? (n - lane - 1) / threads + 1 : 0;
}

/// Cooperative staging for one warp: the lane-strided copy pattern
/// (thread t copies t, t+T, ...) touches, per round, the contiguous run
/// [r*threads + lane_begin, r*threads + lane_end) — one bulk copy per round
/// instead of one element per lane visit.
template <typename T>
inline void warp_stage_rows(const T* src, T* dst, std::size_t n, unsigned threads,
                            unsigned lane_begin, unsigned width) {
    for (std::size_t base = lane_begin; base < n; base += threads) {
        const std::size_t count = std::min<std::size_t>(width, n - base);
        std::copy(src + base, src + base + count, dst + base);
    }
}

/// Element-major bucket counting: one pass over staged[0, n), vector
/// compares across the warp's lanes (lane lane_begin + k owns bucket
/// lane_begin + k).  counts_out is indexed by global lane.  The predicate
/// is split so the hot inner loop is branchless: (lo, hi] membership for
/// every lane, plus the first bucket's lo-inclusive fixup (disjoint terms,
/// since x == lo fails x > lo).
template <typename T>
inline void warp_count_buckets(const T* staged, std::size_t n, const T* sp,
                               unsigned lane_begin, unsigned width,
                               std::uint32_t* counts_out) {
    std::array<T, simt::kMaxWarpLanes> lo;
    std::array<T, simt::kMaxWarpLanes> hi;
    std::array<std::uint32_t, simt::kMaxWarpLanes> cnt{};
    for (unsigned k = 0; k < width; ++k) {
        lo[k] = sp[lane_begin + k];
        hi[k] = sp[lane_begin + k + 1];
    }
    const bool first_bucket = lane_begin == 0;
    for (std::size_t i = 0; i < n; ++i) {
        const T x = staged[i];
        for (unsigned k = 0; k < width; ++k) {
            cnt[k] += static_cast<std::uint32_t>(static_cast<unsigned>(x > lo[k]) &
                                                 static_cast<unsigned>(x <= hi[k]));
        }
        if (first_bucket) {
            cnt[0] += static_cast<std::uint32_t>(static_cast<unsigned>(x == lo[0]) &
                                                 static_cast<unsigned>(x <= hi[0]));
        }
    }
    for (unsigned k = 0; k < width; ++k) counts_out[lane_begin + k] = cnt[k];
}

/// Element-major in-place scatter: one pass over staged[0, n); each
/// element's unique destination bucket comes from one binary search, and
/// the warp emits it through the owning lane's private cursor iff the
/// bucket belongs to this warp.  `cursors` holds `width` pre-seeded write
/// cursors (cursors[k] for global lane lane_begin + k); `emit(dst, i)`
/// performs the actual store(s) for staged element i at position dst.
template <typename T, typename EmitFn>
inline void warp_scatter_buckets(const T* staged, std::size_t n, const T* sp, std::size_t p,
                                 unsigned lane_begin, unsigned width, std::uint32_t* cursors,
                                 const EmitFn& emit) {
    const std::size_t lane_end = lane_begin + width;
    for (std::size_t i = 0; i < n; ++i) {
        const T x = staged[i];
        const std::size_t j = bucket_index(sp, p, x);
        if (j < lane_begin || j >= lane_end) continue;
        if (!in_bucket(x, sp[j], sp[j + 1], j == 0)) continue;  // NaN: no bucket
        emit(cursors[j - lane_begin]++, i);
    }
}

}  // namespace gas::detail
