#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "simt/cost_model.hpp"
#include "simt/error.hpp"
#include "simt/kernel.hpp"

namespace simt {

class Device;
class GraphCtx;

/// A kernel launch described but not yet executed — exactly the
/// (LaunchConfig, body) pair Device::launch takes, packaged so a caller can
/// either launch it directly or add it as a Graph node.  Spec bodies must
/// capture their state by value (spans, scalars, copies of option structs):
/// a graph node may run long after the builder's stack frame is gone.
struct KernelSpec {
    LaunchConfig cfg;
    std::function<void(BlockCtx&)> body;
};

/// Thrown on malformed graphs: dependency edges naming unknown nodes,
/// dependency cycles, mutation while a submit is in flight, or results
/// queried for a node that never ran.
class GraphError : public DeviceError {
  public:
    using DeviceError::DeviceError;
};

/// What one Device::submit executed.  `pruned` counts both predicate-gated
/// nodes whose gate evaluated false and passes a host node skipped via
/// GraphCtx::prune (the device-side analog of a degenerate radix pass).
struct GraphStats {
    std::size_t nodes_executed = 0;   ///< kernel + host nodes that ran
    std::size_t kernel_nodes = 0;     ///< kernel nodes that ran
    std::size_t host_nodes = 0;       ///< host (decision) nodes that ran
    std::size_t device_enqueued = 0;  ///< nodes enqueued during execution
    std::size_t pruned = 0;           ///< nodes skipped by gate or prune()
    double modeled_ms = 0.0;          ///< sum over executed kernel nodes
    double wall_ms = 0.0;             ///< whole submit (one round-trip)
};

/// A work graph: kernel launches and tiny host decisions with explicit
/// dependency edges, executed by Device::submit in one scheduling
/// round-trip over the persistent worker pool.
///
/// The model follows the D3D12 work-graph shape: static nodes encode the
/// known pipeline (phase1 -> phase2 -> phase3), while a *host node* — the
/// launcher-node analog — can emit successor records dynamically through
/// its GraphCtx (enqueue_kernel / enqueue_host), so data-dependent chains
/// like "only the non-degenerate radix scatter passes" never return to a
/// per-launch host round-trip.  Kernel nodes may also carry a predicate
/// (add_kernel_if): a conditional node whose gate is evaluated once its
/// dependencies settle; a false gate prunes the node's work but still
/// releases its dependents.
///
/// Determinism contract: nodes execute one at a time, ready nodes in
/// ascending node-id order, and each kernel node runs through the exact
/// same per-block execution and block-order aggregation core as
/// Device::launch.  A chain-shaped graph therefore produces a kernel log
/// bit-identical (bytes and every deterministic KernelStats field) to the
/// equivalent loop of launches, for any worker count and exec mode.
class Graph {
  public:
    using NodeId = std::size_t;
    using KernelBody = std::function<void(BlockCtx&)>;
    using HostFn = std::function<void(GraphCtx&)>;
    using Predicate = std::function<bool()>;

    /// Adds a kernel node (a LaunchConfig + body, exactly what
    /// Device::launch takes) depending on `deps`.  Throws GraphError if a
    /// dependency id is unknown — the "missing edge" diagnostic.
    NodeId add_kernel(LaunchConfig cfg, KernelBody body, std::vector<NodeId> deps = {});

    /// KernelSpec convenience: add_kernel over a prebuilt spec.
    NodeId add_kernel(KernelSpec spec, std::vector<NodeId> deps = {}) {
        return add_kernel(std::move(spec.cfg), std::move(spec.body), std::move(deps));
    }

    /// Conditional kernel node: `pred` is evaluated on the scheduling
    /// thread once every dependency has settled.  False skips the launch
    /// (counted in GraphStats::pruned) and releases dependents.
    NodeId add_kernel_if(LaunchConfig cfg, KernelBody body, Predicate pred,
                         std::vector<NodeId> deps = {});

    /// Adds a host decision node: `fn` runs on the scheduling thread (the
    /// worker pool stays resident) and may enqueue successor nodes through
    /// its GraphCtx.  Host nodes must not call Device::launch or
    /// Device::submit — they describe work, the graph executes it.
    NodeId add_host(std::string name, HostFn fn, std::vector<NodeId> deps = {});

    /// Adds the dependency edge from -> to.  Throws GraphError on unknown
    /// ids or self-edges.
    void add_edge(NodeId from, NodeId to);

    /// Checks the static graph for dependency cycles; throws GraphError
    /// naming a node on the cycle.  Device::submit calls this first.
    void validate() const;

    /// Nodes currently in the graph (dynamic nodes included after a run).
    [[nodiscard]] std::size_t size() const { return nodes_.size(); }

    // --- results of the most recent Device::submit ---

    [[nodiscard]] bool executed(NodeId id) const;
    [[nodiscard]] bool pruned(NodeId id) const;
    /// Per-node stats, identical to what Device::launch would have
    /// returned for the same kernel.  Throws GraphError if `id` is not a
    /// kernel node or did not execute.
    [[nodiscard]] const KernelStats& kernel_stats(NodeId id) const;
    [[nodiscard]] const GraphStats& stats() const { return stats_; }

  private:
    friend class Device;
    friend class GraphCtx;

    enum class Kind { Kernel, Host };
    enum class State { Pending, Done, Pruned };

    struct Node {
        Kind kind = Kind::Kernel;
        LaunchConfig cfg;     ///< kernel nodes
        KernelBody body;      ///< kernel nodes
        HostFn host;          ///< host nodes
        Predicate pred;       ///< optional conditional gate
        std::vector<NodeId> deps;
        std::vector<NodeId> succs;
        std::size_t unmet = 0;  ///< unsettled dependencies (runtime)
        State state = State::Pending;
        KernelStats stats;  ///< kernel nodes, after execution
        bool dynamic = false;
    };

    /// Shared add path: validates deps, wires edges, returns the id.
    NodeId add_node(Node node, std::vector<NodeId> deps, bool dynamic);
    void check_node_id(NodeId id, const char* what) const;
    /// Drops dynamic nodes from a previous run and resets runtime state so
    /// a graph can be resubmitted.
    void reset_runtime();

    std::vector<Node> nodes_;
    std::size_t static_nodes_ = 0;  ///< nodes added outside execution
    GraphStats stats_;
    bool executing_ = false;
    void* exec_state_ = nullptr;  ///< scheduler scratch, set during submit
};

/// Handed to host nodes while the graph runs: the dynamic-enqueue surface
/// (the PassRecord analog) plus prune accounting.  Valid only for the
/// duration of the host node's callback.
class GraphCtx {
  public:
    /// Enqueues a kernel node.  Empty `deps` means "after the enqueuing
    /// node", i.e. the new node becomes ready as soon as this host
    /// callback returns; explicit deps replace that default.
    Graph::NodeId enqueue_kernel(LaunchConfig cfg, Graph::KernelBody body,
                                 std::vector<Graph::NodeId> deps = {});
    Graph::NodeId enqueue_kernel(KernelSpec spec, std::vector<Graph::NodeId> deps = {}) {
        return enqueue_kernel(std::move(spec.cfg), std::move(spec.body), std::move(deps));
    }
    Graph::NodeId enqueue_kernel_if(LaunchConfig cfg, Graph::KernelBody body,
                                    Graph::Predicate pred,
                                    std::vector<Graph::NodeId> deps = {});
    Graph::NodeId enqueue_host(std::string name, Graph::HostFn fn,
                               std::vector<Graph::NodeId> deps = {});

    /// Records `count` passes this node decided to skip (e.g. a radix pass
    /// whose histogram proves every key shares one digit).  Pure
    /// accounting: shows up in GraphStats::pruned and serve telemetry.
    void prune(std::size_t count = 1);

    /// The node id of the host node this context was handed to.
    [[nodiscard]] Graph::NodeId self() const { return self_; }

  private:
    friend class Device;
    GraphCtx(Graph& graph, Graph::NodeId self) : graph_(graph), self_(self) {}

    Graph& graph_;
    Graph::NodeId self_;
};

}  // namespace simt
