#include "simt/device_memory.hpp"

#include "simt/faults/injector.hpp"

namespace simt {

DeviceMemory::DeviceMemory(std::size_t capacity_bytes, Mode mode)
    : mode_(mode), capacity_(capacity_bytes) {
    if (capacity_ > 0) {
        free_.emplace(0, capacity_);
    }
    if (mode_ == Mode::Backed && capacity_ > 0) {
        // Default-initialized: pages are committed lazily by the OS.
        arena_ = std::unique_ptr<std::byte[]>(new std::byte[capacity_]);
    }
}

std::size_t DeviceMemory::allocate(std::size_t bytes) {
    if (bytes == 0) bytes = 1;  // distinct offsets for zero-size requests
    const std::size_t rounded = (bytes + kAlignment - 1) / kAlignment * kAlignment;
    if (rounded < bytes) throw DeviceBadAlloc(bytes, in_use_, capacity_);  // overflow

    if (faults_ != nullptr && faults_->on_alloc(rounded)) {
        // Injected transient allocation failure: indistinguishable from a
        // genuine out-of-memory so callers exercise their real recovery path.
        throw DeviceBadAlloc(rounded, in_use_, capacity_);
    }

    for (auto it = free_.begin(); it != free_.end(); ++it) {
        if (it->second < rounded) continue;
        const std::size_t offset = it->first;
        const std::size_t remaining = it->second - rounded;
        free_.erase(it);
        if (remaining > 0) {
            free_.emplace(offset + rounded, remaining);
        }
        live_.emplace(offset, rounded);
        in_use_ += rounded;
        peak_ = std::max(peak_, in_use_);
        return offset;
    }
    throw DeviceBadAlloc(rounded, in_use_, capacity_);
}

void DeviceMemory::deallocate(std::size_t offset) noexcept {
    const auto it = live_.find(offset);
    if (it == live_.end()) return;  // double free / unknown offset: ignore
    const std::size_t size = it->second;
    live_.erase(it);
    in_use_ -= size;

    auto [ins, _] = free_.emplace(offset, size);
    // Coalesce with successor.
    if (auto next = std::next(ins); next != free_.end() && ins->first + ins->second == next->first) {
        ins->second += next->second;
        free_.erase(next);
    }
    // Coalesce with predecessor.
    if (ins != free_.begin()) {
        if (auto prev = std::prev(ins); prev->first + prev->second == ins->first) {
            prev->second += ins->second;
            free_.erase(ins);
        }
    }
}

std::byte* DeviceMemory::translate(std::size_t offset) {
    if (mode_ == Mode::Virtual) {
        throw DeviceError("cannot dereference Virtual-mode device memory");
    }
    if (offset >= capacity_) {
        throw DeviceError("device offset out of range");
    }
    return arena_.get() + offset;
}

const std::byte* DeviceMemory::translate(std::size_t offset) const {
    return const_cast<DeviceMemory*>(this)->translate(offset);
}

std::size_t DeviceMemory::largest_free_range() const {
    std::size_t best = 0;
    for (const auto& [off, size] : free_) best = std::max(best, size);
    return best;
}

std::pair<std::size_t, std::size_t> DeviceMemory::largest_live_allocation() const {
    std::pair<std::size_t, std::size_t> best{0, 0};
    for (const auto& [off, size] : live_) {
        if (size > best.second) best = {off, size};
    }
    return best;
}

std::pair<std::size_t, std::size_t> DeviceMemory::live_allocation(std::size_t index) const {
    for (const auto& [off, size] : live_) {
        if (index-- == 0) return {off, size};
    }
    return {0, 0};
}

void DeviceMemory::reset() {
    live_.clear();
    free_.clear();
    if (capacity_ > 0) free_.emplace(0, capacity_);
    in_use_ = 0;
}

}  // namespace simt
