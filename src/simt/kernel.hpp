#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "simt/counters.hpp"
#include "simt/error.hpp"
#include "simt/sanitize/tracked_span.hpp"

namespace simt {

/// Order in which a block's logical threads are executed by the simulator.
///
/// Kernels written for the barrier-synchronous contract (no lane reads data
/// another lane wrote *within the same thread region*) must produce identical
/// results under every order; tests exploit this to detect intra-region races.
enum class ThreadOrder { Forward, Reverse };

/// How the interpreter walks a block's lanes.
///
///  * Scalar — the reference interpreter: one lane at a time, exactly the
///    pre-warp behavior.  This is the default.
///  * Warp — the fast path: `for_each_warp` regions receive a whole
///    warp-sized lane group per call, so migrated kernels amortize lambda
///    dispatch and run SIMD-friendly element-major inner loops.
///
/// The two modes are contractually bit-identical: same output bytes, same
/// KernelStats (asserted by the execution-mode equivalence sweep).  Warp
/// mode preserves the scalar total lane order — Forward walks warps then
/// lanes ascending, Reverse walks both descending — so even kernels whose
/// shared-atomic interleavings are order-sensitive match byte-for-byte.
enum class ExecMode { Scalar, Warp };

[[nodiscard]] constexpr const char* to_string(ExecMode mode) {
    return mode == ExecMode::Warp ? "warp" : "scalar";
}

/// Execution mode from the SIMT_EXEC environment variable: "warp" selects
/// the fast path, "scalar"/empty/unset the reference interpreter.  Any
/// other value is a loud configuration error, not a silent fallback.
[[nodiscard]] inline ExecMode exec_mode_from_env() {
    const char* v = std::getenv("SIMT_EXEC");
    if (v == nullptr || *v == '\0' || std::string_view(v) == "scalar") {
        return ExecMode::Scalar;
    }
    if (std::string_view(v) == "warp") return ExecMode::Warp;
    throw DeviceError(std::string("SIMT_EXEC: unknown execution mode '") + v +
                      "' (expected scalar|warp)");
}

/// Upper bound on lanes handed to one WarpCtx; kernels may size their
/// per-lane stack temporaries (cursor/count arrays) with this constant.
inline constexpr unsigned kMaxWarpLanes = 32;

/// One-dimensional launch configuration.  The paper's kernels are all 1-D
/// (one block per array, one thread per bucket), so the substrate keeps the
/// grid 1-D; nothing in the model depends on higher dimensionality.
struct LaunchConfig {
    std::string name = "kernel";
    unsigned grid_dim = 1;   ///< number of blocks
    unsigned block_dim = 1;  ///< threads per block
};

/// Handle passed to per-thread code: identifies the lane and receives its
/// self-reported work counters.
class ThreadCtx {
  public:
    ThreadCtx(unsigned tid, unsigned block_dim, LaneCounters& counters)
        : tid_(tid), block_dim_(block_dim), counters_(&counters) {}

    [[nodiscard]] unsigned tid() const { return tid_; }
    [[nodiscard]] unsigned block_dim() const { return block_dim_; }

    /// `n` simple ALU operations (compares, adds, index math).
    void ops(std::uint64_t n) { counters_->ops += n; }
    /// `n` shared-memory accesses.
    void shared(std::uint64_t n) { counters_->shared_accesses += n; }
    /// `bytes` of global memory moved with warp-coalesced addressing.
    void global_coalesced(std::uint64_t bytes) { counters_->coalesced_bytes += bytes; }
    /// `n` scattered global accesses (each costs a full DRAM segment).
    void global_random(std::uint64_t n) { counters_->random_accesses += n; }

  private:
    unsigned tid_;
    unsigned block_dim_;
    LaneCounters* counters_;
};

/// Handle passed to warp-region code: one warp-sized group of lanes
/// [lane_begin, lane_end) executed in lockstep.  Under ExecMode::Scalar the
/// group is a single lane, so a kernel written against WarpCtx runs
/// unchanged — and bit-identically — in both modes.
///
/// Counter contract (DESIGN.md "execution modes"):
///  * `*_uniform` charges every lane of the group the same amount — legal
///    exactly when all lanes did the same work (the lockstep common case).
///    Charges accumulate into one record and are folded into the per-lane
///    counters once, when the region ends, instead of 32 times per call.
///  * `*_lane` is the divergence escape hatch: lanes whose work differs
///    (ragged tails, broadcast lanes, per-lane match counts) are charged
///    individually, keeping BlockCost and imbalance exact.
///  * `for_lanes(fn)` runs the classic per-lane body (ThreadCtx, shadow
///    lane attribution, scalar iteration order) for the group — the
///    reference fallback every migrated kernel uses when `tracked()`.
class WarpCtx {
  public:
    WarpCtx(unsigned lane_begin, unsigned lane_end, unsigned block_dim, ThreadOrder order,
            std::span<LaneCounters> lanes, sanitize::SlotShadow* shadow)
        : lane_begin_(lane_begin),
          lane_end_(lane_end),
          block_dim_(block_dim),
          order_(order),
          lanes_(lanes),
          shadow_(shadow) {}

    WarpCtx(const WarpCtx&) = delete;
    WarpCtx& operator=(const WarpCtx&) = delete;

    /// First lane (global tid) of this group.
    [[nodiscard]] unsigned lane_begin() const { return lane_begin_; }
    /// One past the last lane of this group.
    [[nodiscard]] unsigned lane_end() const { return lane_end_; }
    /// Active lane count (1 in scalar mode; up to the warp size otherwise).
    [[nodiscard]] unsigned width() const { return lane_end_ - lane_begin_; }
    [[nodiscard]] unsigned block_dim() const { return block_dim_; }

    /// True when the sanitizer shadow is attached: vectorized bodies must
    /// fall back to `for_lanes` so every access is tracked and attributed
    /// to its lane exactly as the scalar interpreter would.
    [[nodiscard]] bool tracked() const { return shadow_ != nullptr; }

    /// Attributes subsequent tracked accesses to `lane` (no-op untracked);
    /// for custom tracked warp bodies that interleave lanes themselves.
    void set_lane(unsigned lane) {
        if (shadow_ != nullptr) shadow_->set_lane(lane);
    }

    /// Uniform charges: every lane of the group did `n` of the named work.
    void ops_uniform(std::uint64_t n) { uniform_.ops += n; }
    void shared_uniform(std::uint64_t n) { uniform_.shared_accesses += n; }
    void coalesced_uniform(std::uint64_t bytes) { uniform_.coalesced_bytes += bytes; }
    void random_uniform(std::uint64_t n) { uniform_.random_accesses += n; }

    /// Per-lane charges (divergence escape hatch); `lane` is the global tid.
    void ops_lane(unsigned lane, std::uint64_t n) { delta_[lane - lane_begin_].ops += n; }
    void shared_lane(unsigned lane, std::uint64_t n) {
        delta_[lane - lane_begin_].shared_accesses += n;
    }
    void coalesced_lane(unsigned lane, std::uint64_t bytes) {
        delta_[lane - lane_begin_].coalesced_bytes += bytes;
    }
    void random_lane(unsigned lane, std::uint64_t n) {
        delta_[lane - lane_begin_].random_accesses += n;
    }

    /// Reference per-lane execution of this group: `fn(ThreadCtx&)` once per
    /// lane, in the scalar interpreter's order (ascending under Forward,
    /// descending under Reverse), with shadow lane attribution.  Counters
    /// charged through the ThreadCtx are the lane's real counters.
    template <typename F>
    void for_lanes(F&& fn) {
        if (order_ == ThreadOrder::Forward) {
            for (unsigned t = lane_begin_; t < lane_end_; ++t) run_lane(fn, t);
        } else {
            for (unsigned t = lane_end_; t-- > lane_begin_;) run_lane(fn, t);
        }
    }

    /// Folds the accumulated uniform + per-lane charges into the block's
    /// lane counters (one pass per region; called by for_each_warp).
    void flush() {
        for (unsigned t = lane_begin_; t < lane_end_; ++t) {
            lanes_[t] += uniform_;
            lanes_[t] += delta_[t - lane_begin_];
        }
        uniform_ = LaneCounters{};
        delta_.fill(LaneCounters{});
    }

  private:
    template <typename F>
    void run_lane(F&& fn, unsigned t) {
        if (shadow_ != nullptr) shadow_->set_lane(t);
        ThreadCtx tc(t, block_dim_, lanes_[t]);
        fn(tc);
    }

    unsigned lane_begin_;
    unsigned lane_end_;
    unsigned block_dim_;
    ThreadOrder order_;
    std::span<LaneCounters> lanes_;
    sanitize::SlotShadow* shadow_;
    LaneCounters uniform_{};
    std::array<LaneCounters, kMaxWarpLanes> delta_{};
};

/// Execution context of one block: thread iteration, shared memory, counters.
///
/// `for_each_thread(fn)` runs `fn(ThreadCtx&)` once per logical thread.
/// Consecutive calls are separated by an implicit `__syncthreads()`; within
/// one call, lanes must be independent (the CUDA race-free contract between
/// barriers).  The simulator may run lanes in forward or reverse order.
class BlockCtx {
  public:
    /// An unconfigured context (a pooled execution slot awaiting its first
    /// launch); configure() must run before any block does.
    BlockCtx() = default;

    BlockCtx(unsigned block_dim, unsigned grid_dim, std::size_t shared_capacity,
             ThreadOrder order, unsigned slot = 0)
        : grid_dim_(grid_dim),
          block_dim_(block_dim),
          slot_(slot),
          shared_capacity_(shared_capacity),
          order_(order),
          shared_(shared_capacity),
          lanes_(block_dim) {}

    /// Capacity ratio beyond which configure() trims pooled storage: one
    /// oversized launch may not pin more than 4x a later launch's request
    /// in every pool slot for the device's lifetime.
    static constexpr std::size_t kTrimFactor = 4;

    /// Re-targets the context at a new launch shape, reusing the shared
    /// arena and lane storage already held (persistent-pool slot reuse: no
    /// per-launch 48 KB allocation).  Resets the shared high-water mark so a
    /// reused slot never reports a previous launch's footprint.  Like fresh
    /// construction, arena *contents* are unspecified — kernels own
    /// initializing what they read, exactly as with __shared__ memory.
    /// Storage kept across launches is trimmed once it exceeds kTrimFactor
    /// times the current request, bounding pool-slot bloat.
    void configure(unsigned block_dim, unsigned grid_dim, std::size_t shared_capacity,
                   ThreadOrder order, unsigned slot, ExecMode exec_mode = ExecMode::Scalar,
                   unsigned warp_size = kMaxWarpLanes) {
        grid_dim_ = grid_dim;
        block_dim_ = block_dim;
        slot_ = slot;
        shared_capacity_ = shared_capacity;
        order_ = order;
        exec_mode_ = exec_mode;
        warp_size_ = std::clamp(warp_size, 1u, kMaxWarpLanes);
        shared_used_ = 0;
        shared_high_water_ = 0;
        if (shared_.size() < shared_capacity_) {
            shared_.resize(shared_capacity_);
        } else if (shared_.size() > kTrimFactor * std::max<std::size_t>(shared_capacity_, 1)) {
            shared_.resize(shared_capacity_);
            shared_.shrink_to_fit();
        }
        lanes_.resize(block_dim_);
        if (lanes_.capacity() > kTrimFactor * std::max<std::size_t>(block_dim_, 1)) {
            lanes_.shrink_to_fit();
        }
    }

    [[nodiscard]] unsigned block_idx() const { return block_idx_; }
    [[nodiscard]] unsigned grid_dim() const { return grid_dim_; }
    [[nodiscard]] unsigned block_dim() const { return block_dim_; }
    [[nodiscard]] ExecMode exec_mode() const { return exec_mode_; }
    [[nodiscard]] unsigned warp_size() const { return warp_size_; }

    /// Pooled-storage introspection for the configure() trim-policy tests.
    [[nodiscard]] std::size_t shared_arena_bytes() const { return shared_.size(); }
    [[nodiscard]] std::size_t lane_capacity() const { return lanes_.capacity(); }

    /// Execution-slot id (0-based), analogous to "which SM slot is this
    /// block resident on": stable across the block's lifetime, unique among
    /// *concurrently executing* blocks.  Kernels that need a per-resident-
    /// block scratch row (e.g. phase 2's global fallback) key it off this,
    /// never off block_idx, so the multi-worker simulator stays race-free.
    [[nodiscard]] unsigned slot() const { return slot_; }

    /// Bump-allocates `count` Ts from the block's shared-memory arena.
    /// Contents persist across thread regions within the block (like
    /// __shared__ variables) and are invalidated when the next block starts.
    /// The returned view converts implicitly to std::span; with the
    /// sanitizer enabled its indexed accesses feed the slot's shadow state.
    template <typename T>
    sanitize::TrackedSpan<T> shared_alloc(std::size_t count) {
        const std::size_t align = alignof(T);
        std::size_t off = (shared_used_ + align - 1) / align * align;
        const std::size_t bytes = count * sizeof(T);
        if (off + bytes > shared_capacity_) {
            throw SharedMemoryOverflow(off + bytes, shared_capacity_);
        }
        shared_used_ = off + bytes;
        shared_high_water_ = std::max(shared_high_water_, shared_used_);
        // Shared arena is raw storage; T must be trivially constructible the
        // way __shared__ arrays are.
        static_assert(std::is_trivially_copyable_v<T>);
        return {{reinterpret_cast<T*>(shared_.data() + off), count},
                shadow_,
                sanitize::MemSpace::Shared,
                off};
    }

    /// Checked view over a device-global range (a DeviceBuffer span or a
    /// sub-range of one).  Untracked — a plain span in tracked clothing —
    /// when the sanitizer is off.
    template <typename T>
    [[nodiscard]] sanitize::TrackedSpan<T> global_view(std::span<T> s) const {
        return {s, shadow_, sanitize::MemSpace::Global, 0};
    }

    /// Runs `fn(ThreadCtx&)` for every thread of the block; an implicit
    /// barrier separates consecutive calls.
    template <typename F>
    void for_each_thread(F&& fn) {
        if (shadow_ != nullptr) shadow_->begin_region();
        if (order_ == ThreadOrder::Forward) {
            for (unsigned t = 0; t < block_dim_; ++t) {
                if (shadow_ != nullptr) shadow_->set_lane(t);
                ThreadCtx tc(t, block_dim_, lanes_[t]);
                fn(tc);
            }
        } else {
            for (unsigned t = block_dim_; t-- > 0;) {
                if (shadow_ != nullptr) shadow_->set_lane(t);
                ThreadCtx tc(t, block_dim_, lanes_[t]);
                fn(tc);
            }
        }
    }

    /// Runs `fn(WarpCtx&)` once per lane group; an implicit barrier
    /// separates consecutive calls, exactly like for_each_thread.  Under
    /// ExecMode::Scalar each group is one lane walked in ThreadOrder — the
    /// reference interpretation.  Under ExecMode::Warp each group is a full
    /// warp (the last may be ragged), groups and in-group lanes both follow
    /// ThreadOrder, so the total lane order matches scalar mode exactly.
    ///
    /// Warp bodies either iterate lanes via WarpCtx::for_lanes (the
    /// reference body, mandatory when WarpCtx::tracked()) or run an
    /// element-major vectorized loop over the lane range, charging counters
    /// through the uniform/per-lane helpers so stats stay bit-identical.
    template <typename F>
    void for_each_warp(F&& fn) {
        if (shadow_ != nullptr) shadow_->begin_region();
        const unsigned step = exec_mode_ == ExecMode::Warp ? warp_size_ : 1;
        const unsigned groups = (block_dim_ + step - 1) / step;
        for (unsigned g = 0; g < groups; ++g) {
            const unsigned gg = order_ == ThreadOrder::Forward ? g : groups - 1 - g;
            const unsigned begin = gg * step;
            const unsigned end = std::min(begin + step, block_dim_);
            WarpCtx wc(begin, end, block_dim_, order_, lanes_, shadow_);
            fn(wc);
            wc.flush();
        }
    }

    /// Runs `fn(ThreadCtx&)` on thread 0 only (e.g. per-block prefix sums),
    /// with the same barrier semantics as a full region.
    template <typename F>
    void single_thread(F&& fn) {
        if (shadow_ != nullptr) {
            shadow_->begin_region();
            shadow_->set_lane(0);
        }
        ThreadCtx tc(0, block_dim_, lanes_[0]);
        fn(tc);
    }

    [[nodiscard]] std::size_t shared_used() const { return shared_used_; }
    [[nodiscard]] std::size_t shared_high_water() const { return shared_high_water_; }
    [[nodiscard]] std::span<const LaneCounters> lanes() const { return lanes_; }

    /// Re-arms the context for the next block (launch-engine internal).
    void begin_block(unsigned block_idx) {
        block_idx_ = block_idx;
        shared_used_ = 0;
        lanes_.assign(block_dim_, LaneCounters{});
        if (shadow_ != nullptr) shadow_->begin_block(block_idx);
    }

    /// Attaches the sanitizer to this execution slot for the upcoming launch
    /// (launch-engine internal).  The shadow state itself is owned by the
    /// slot and persists across launches, mirroring the shared arena, so a
    /// pooled slot's init tracking genuinely observes arena reuse.
    void enable_sanitize(const sanitize::SanitizeOptions& opts, const std::string& kernel) {
        if (!shadow_store_) shadow_store_ = std::make_unique<sanitize::SlotShadow>();
        shadow_store_->configure(opts, shared_capacity_);
        shadow_store_->begin_launch(kernel, block_dim_);
        shadow_ = shadow_store_.get();
    }
    /// Detaches the sanitizer: subsequent launches pay zero instrumentation.
    void disable_sanitize() { shadow_ = nullptr; }
    [[nodiscard]] sanitize::SlotShadow* sanitizer() { return shadow_; }

  private:
    unsigned block_idx_ = 0;
    unsigned grid_dim_ = 0;
    unsigned block_dim_ = 0;
    unsigned slot_ = 0;
    std::size_t shared_capacity_ = 0;
    std::size_t shared_used_ = 0;
    std::size_t shared_high_water_ = 0;
    ThreadOrder order_ = ThreadOrder::Forward;
    ExecMode exec_mode_ = ExecMode::Scalar;
    unsigned warp_size_ = kMaxWarpLanes;
    std::vector<std::byte> shared_;
    std::vector<LaneCounters> lanes_;
    sanitize::SlotShadow* shadow_ = nullptr;  ///< null = sanitizer off (default)
    std::unique_ptr<sanitize::SlotShadow> shadow_store_;
};

}  // namespace simt
