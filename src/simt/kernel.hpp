#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "simt/counters.hpp"
#include "simt/error.hpp"
#include "simt/sanitize/tracked_span.hpp"

namespace simt {

/// Order in which a block's logical threads are executed by the simulator.
///
/// Kernels written for the barrier-synchronous contract (no lane reads data
/// another lane wrote *within the same thread region*) must produce identical
/// results under every order; tests exploit this to detect intra-region races.
enum class ThreadOrder { Forward, Reverse };

/// One-dimensional launch configuration.  The paper's kernels are all 1-D
/// (one block per array, one thread per bucket), so the substrate keeps the
/// grid 1-D; nothing in the model depends on higher dimensionality.
struct LaunchConfig {
    std::string name = "kernel";
    unsigned grid_dim = 1;   ///< number of blocks
    unsigned block_dim = 1;  ///< threads per block
};

/// Handle passed to per-thread code: identifies the lane and receives its
/// self-reported work counters.
class ThreadCtx {
  public:
    ThreadCtx(unsigned tid, unsigned block_dim, LaneCounters& counters)
        : tid_(tid), block_dim_(block_dim), counters_(&counters) {}

    [[nodiscard]] unsigned tid() const { return tid_; }
    [[nodiscard]] unsigned block_dim() const { return block_dim_; }

    /// `n` simple ALU operations (compares, adds, index math).
    void ops(std::uint64_t n) { counters_->ops += n; }
    /// `n` shared-memory accesses.
    void shared(std::uint64_t n) { counters_->shared_accesses += n; }
    /// `bytes` of global memory moved with warp-coalesced addressing.
    void global_coalesced(std::uint64_t bytes) { counters_->coalesced_bytes += bytes; }
    /// `n` scattered global accesses (each costs a full DRAM segment).
    void global_random(std::uint64_t n) { counters_->random_accesses += n; }

  private:
    unsigned tid_;
    unsigned block_dim_;
    LaneCounters* counters_;
};

/// Execution context of one block: thread iteration, shared memory, counters.
///
/// `for_each_thread(fn)` runs `fn(ThreadCtx&)` once per logical thread.
/// Consecutive calls are separated by an implicit `__syncthreads()`; within
/// one call, lanes must be independent (the CUDA race-free contract between
/// barriers).  The simulator may run lanes in forward or reverse order.
class BlockCtx {
  public:
    /// An unconfigured context (a pooled execution slot awaiting its first
    /// launch); configure() must run before any block does.
    BlockCtx() = default;

    BlockCtx(unsigned block_dim, unsigned grid_dim, std::size_t shared_capacity,
             ThreadOrder order, unsigned slot = 0)
        : grid_dim_(grid_dim),
          block_dim_(block_dim),
          slot_(slot),
          shared_capacity_(shared_capacity),
          order_(order),
          shared_(shared_capacity),
          lanes_(block_dim) {}

    /// Re-targets the context at a new launch shape, reusing the shared
    /// arena and lane storage already held (persistent-pool slot reuse: no
    /// per-launch 48 KB allocation).  Resets the shared high-water mark so a
    /// reused slot never reports a previous launch's footprint.  Like fresh
    /// construction, arena *contents* are unspecified — kernels own
    /// initializing what they read, exactly as with __shared__ memory.
    void configure(unsigned block_dim, unsigned grid_dim, std::size_t shared_capacity,
                   ThreadOrder order, unsigned slot) {
        grid_dim_ = grid_dim;
        block_dim_ = block_dim;
        slot_ = slot;
        shared_capacity_ = shared_capacity;
        order_ = order;
        shared_used_ = 0;
        shared_high_water_ = 0;
        if (shared_.size() < shared_capacity_) shared_.resize(shared_capacity_);
        lanes_.resize(block_dim_);
    }

    [[nodiscard]] unsigned block_idx() const { return block_idx_; }
    [[nodiscard]] unsigned grid_dim() const { return grid_dim_; }
    [[nodiscard]] unsigned block_dim() const { return block_dim_; }

    /// Execution-slot id (0-based), analogous to "which SM slot is this
    /// block resident on": stable across the block's lifetime, unique among
    /// *concurrently executing* blocks.  Kernels that need a per-resident-
    /// block scratch row (e.g. phase 2's global fallback) key it off this,
    /// never off block_idx, so the multi-worker simulator stays race-free.
    [[nodiscard]] unsigned slot() const { return slot_; }

    /// Bump-allocates `count` Ts from the block's shared-memory arena.
    /// Contents persist across thread regions within the block (like
    /// __shared__ variables) and are invalidated when the next block starts.
    /// The returned view converts implicitly to std::span; with the
    /// sanitizer enabled its indexed accesses feed the slot's shadow state.
    template <typename T>
    sanitize::TrackedSpan<T> shared_alloc(std::size_t count) {
        const std::size_t align = alignof(T);
        std::size_t off = (shared_used_ + align - 1) / align * align;
        const std::size_t bytes = count * sizeof(T);
        if (off + bytes > shared_capacity_) {
            throw SharedMemoryOverflow(off + bytes, shared_capacity_);
        }
        shared_used_ = off + bytes;
        shared_high_water_ = std::max(shared_high_water_, shared_used_);
        // Shared arena is raw storage; T must be trivially constructible the
        // way __shared__ arrays are.
        static_assert(std::is_trivially_copyable_v<T>);
        return {{reinterpret_cast<T*>(shared_.data() + off), count},
                shadow_,
                sanitize::MemSpace::Shared,
                off};
    }

    /// Checked view over a device-global range (a DeviceBuffer span or a
    /// sub-range of one).  Untracked — a plain span in tracked clothing —
    /// when the sanitizer is off.
    template <typename T>
    [[nodiscard]] sanitize::TrackedSpan<T> global_view(std::span<T> s) const {
        return {s, shadow_, sanitize::MemSpace::Global, 0};
    }

    /// Runs `fn(ThreadCtx&)` for every thread of the block; an implicit
    /// barrier separates consecutive calls.
    template <typename F>
    void for_each_thread(F&& fn) {
        if (shadow_ != nullptr) shadow_->begin_region();
        if (order_ == ThreadOrder::Forward) {
            for (unsigned t = 0; t < block_dim_; ++t) {
                if (shadow_ != nullptr) shadow_->set_lane(t);
                ThreadCtx tc(t, block_dim_, lanes_[t]);
                fn(tc);
            }
        } else {
            for (unsigned t = block_dim_; t-- > 0;) {
                if (shadow_ != nullptr) shadow_->set_lane(t);
                ThreadCtx tc(t, block_dim_, lanes_[t]);
                fn(tc);
            }
        }
    }

    /// Runs `fn(ThreadCtx&)` on thread 0 only (e.g. per-block prefix sums),
    /// with the same barrier semantics as a full region.
    template <typename F>
    void single_thread(F&& fn) {
        if (shadow_ != nullptr) {
            shadow_->begin_region();
            shadow_->set_lane(0);
        }
        ThreadCtx tc(0, block_dim_, lanes_[0]);
        fn(tc);
    }

    [[nodiscard]] std::size_t shared_used() const { return shared_used_; }
    [[nodiscard]] std::size_t shared_high_water() const { return shared_high_water_; }
    [[nodiscard]] std::span<const LaneCounters> lanes() const { return lanes_; }

    /// Re-arms the context for the next block (launch-engine internal).
    void begin_block(unsigned block_idx) {
        block_idx_ = block_idx;
        shared_used_ = 0;
        lanes_.assign(block_dim_, LaneCounters{});
        if (shadow_ != nullptr) shadow_->begin_block(block_idx);
    }

    /// Attaches the sanitizer to this execution slot for the upcoming launch
    /// (launch-engine internal).  The shadow state itself is owned by the
    /// slot and persists across launches, mirroring the shared arena, so a
    /// pooled slot's init tracking genuinely observes arena reuse.
    void enable_sanitize(const sanitize::SanitizeOptions& opts, const std::string& kernel) {
        if (!shadow_store_) shadow_store_ = std::make_unique<sanitize::SlotShadow>();
        shadow_store_->configure(opts, shared_capacity_);
        shadow_store_->begin_launch(kernel, block_dim_);
        shadow_ = shadow_store_.get();
    }
    /// Detaches the sanitizer: subsequent launches pay zero instrumentation.
    void disable_sanitize() { shadow_ = nullptr; }
    [[nodiscard]] sanitize::SlotShadow* sanitizer() { return shadow_; }

  private:
    unsigned block_idx_ = 0;
    unsigned grid_dim_ = 0;
    unsigned block_dim_ = 0;
    unsigned slot_ = 0;
    std::size_t shared_capacity_ = 0;
    std::size_t shared_used_ = 0;
    std::size_t shared_high_water_ = 0;
    ThreadOrder order_ = ThreadOrder::Forward;
    std::vector<std::byte> shared_;
    std::vector<LaneCounters> lanes_;
    sanitize::SlotShadow* shadow_ = nullptr;  ///< null = sanitizer off (default)
    std::unique_ptr<sanitize::SlotShadow> shadow_store_;
};

}  // namespace simt
