#pragma once

#include <cstring>
#include <span>
#include <utility>

#include "simt/device.hpp"

namespace simt {

/// RAII handle to a typed allocation in simulated device global memory.
/// Move-only, like a cudaMalloc'd pointer wrapped in a unique owner.
template <typename T>
class DeviceBuffer {
    static_assert(std::is_trivially_copyable_v<T>,
                  "device memory holds trivially copyable objects only");

  public:
    DeviceBuffer() = default;

    DeviceBuffer(Device& device, std::size_t count)
        : device_(&device), count_(count), offset_(device.memory().allocate(count * sizeof(T))) {}

    /// Non-owning view of device memory someone else allocated (a pooling
    /// sub-allocator, a sub-range of a bigger buffer).  The view behaves
    /// like a DeviceBuffer everywhere a kernel driver needs one, but its
    /// destructor never touches the allocator — lifetime stays with the
    /// real owner.
    [[nodiscard]] static DeviceBuffer borrow(Device& device, std::size_t offset,
                                             std::size_t count) {
        DeviceBuffer b;
        b.device_ = &device;
        b.count_ = count;
        b.offset_ = offset;
        b.owning_ = false;
        return b;
    }

    DeviceBuffer(DeviceBuffer&& o) noexcept
        : device_(std::exchange(o.device_, nullptr)),
          count_(std::exchange(o.count_, 0)),
          offset_(std::exchange(o.offset_, 0)),
          owning_(std::exchange(o.owning_, true)) {}

    DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
        if (this != &o) {
            release();
            device_ = std::exchange(o.device_, nullptr);
            count_ = std::exchange(o.count_, 0);
            offset_ = std::exchange(o.offset_, 0);
            owning_ = std::exchange(o.owning_, true);
        }
        return *this;
    }

    DeviceBuffer(const DeviceBuffer&) = delete;
    DeviceBuffer& operator=(const DeviceBuffer&) = delete;

    ~DeviceBuffer() { release(); }

    [[nodiscard]] bool empty() const { return count_ == 0; }
    [[nodiscard]] std::size_t size() const { return count_; }
    [[nodiscard]] std::size_t size_bytes() const { return count_ * sizeof(T); }
    [[nodiscard]] std::size_t offset() const { return offset_; }
    [[nodiscard]] Device* device() const { return device_; }
    [[nodiscard]] bool owning() const { return owning_; }

    /// Host view of the device data (Backed mode only).
    [[nodiscard]] std::span<T> span() {
        if (count_ == 0) return {};
        return {reinterpret_cast<T*>(device_->memory().translate(offset_)), count_};
    }
    [[nodiscard]] std::span<const T> span() const {
        if (count_ == 0) return {};
        return {reinterpret_cast<const T*>(device_->memory().translate(offset_)), count_};
    }

    void release() {
        if (device_ != nullptr && count_ > 0 && owning_) {
            device_->memory().deallocate(offset_);
        }
        device_ = nullptr;
        count_ = 0;
        offset_ = 0;
        owning_ = true;
    }

  private:
    Device* device_ = nullptr;
    std::size_t count_ = 0;
    std::size_t offset_ = 0;
    bool owning_ = true;
};

/// Copies host data into a device buffer; returns modeled H2D milliseconds.
template <typename T>
double copy_to_device(std::span<const T> host, DeviceBuffer<T>& dst) {
    std::memcpy(dst.span().data(), host.data(),
                std::min(host.size_bytes(), dst.size_bytes()));
    return dst.device()->transfer_ms(std::min(host.size_bytes(), dst.size_bytes()));
}

/// Copies device data back to host; returns modeled D2H milliseconds.
template <typename T>
double copy_to_host(const DeviceBuffer<T>& src, std::span<T> host) {
    std::memcpy(host.data(), src.span().data(),
                std::min(host.size_bytes(), src.size_bytes()));
    return src.device()->transfer_ms(std::min(host.size_bytes(), src.size_bytes()));
}

}  // namespace simt
