#pragma once

#include <cstddef>
#include <vector>

namespace simt {

/// Discrete-event timeline for modeling multi-stream overlap of transfers and
/// kernels, as used by the out-of-core extension (paper section 9).
///
/// Resources mirror a K40c: one H2D copy engine, one D2H copy engine, and the
/// compute engine.  An operation enqueued on a stream starts when both the
/// stream's previous operation and the target engine are free (the CUDA
/// stream/engine model), so double-buffered pipelines overlap transfers with
/// compute while a single stream serializes.
class Timeline {
  public:
    explicit Timeline(std::size_t num_streams)
        : stream_ready_(num_streams, 0.0) {}

    void h2d(std::size_t stream, double ms) { enqueue(stream, h2d_ready_, ms); }
    void compute(std::size_t stream, double ms) { enqueue(stream, compute_ready_, ms); }
    void d2h(std::size_t stream, double ms) { enqueue(stream, d2h_ready_, ms); }

    /// Modeled end-to-end time with overlap.
    [[nodiscard]] double elapsed_ms() const;
    /// What the same work would take fully serialized (no streams).
    [[nodiscard]] double serialized_ms() const { return serialized_; }
    [[nodiscard]] std::size_t stream_count() const { return stream_ready_.size(); }

  private:
    void enqueue(std::size_t stream, double& engine_ready, double ms);

    std::vector<double> stream_ready_;
    double h2d_ready_ = 0.0;
    double d2h_ready_ = 0.0;
    double compute_ready_ = 0.0;
    double serialized_ = 0.0;
};

}  // namespace simt
