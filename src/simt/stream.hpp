#pragma once

#include <cstddef>
#include <vector>

namespace simt {

class Device;

/// Discrete-event timeline for modeling multi-stream overlap of transfers and
/// kernels, as used by the out-of-core extension (paper section 9).
///
/// Resources mirror a K40c: one H2D copy engine, one D2H copy engine, and the
/// compute engine.  An operation enqueued on a stream starts when both the
/// stream's previous operation and the target engine are free (the CUDA
/// stream/engine model), so double-buffered pipelines overlap transfers with
/// compute while a single stream serializes.
class Timeline {
  public:
    explicit Timeline(std::size_t num_streams)
        : stream_ready_(num_streams, 0.0) {}

    void h2d(std::size_t stream, double ms) {
        enqueue(stream, h2d_ready_, h2d_busy_, ms, "h2d");
    }
    void compute(std::size_t stream, double ms) {
        enqueue(stream, compute_ready_, compute_busy_, ms, "compute");
    }
    void d2h(std::size_t stream, double ms) {
        enqueue(stream, d2h_ready_, d2h_busy_, ms, "d2h");
    }

    /// Routes engine operations through `device`'s fault injector so a plan
    /// with stalls extends the modeled makespan.  The device is polled per
    /// operation, so a plan installed after attachment still applies; a
    /// device without a plan costs one null check per operation.
    void attach_faults(Device& device) { fault_device_ = &device; }

    /// Modeled end-to-end time with overlap.
    [[nodiscard]] double elapsed_ms() const;
    /// What the same work would take fully serialized (no streams).
    [[nodiscard]] double serialized_ms() const { return serialized_; }
    [[nodiscard]] std::size_t stream_count() const { return stream_ready_.size(); }

    // Per-engine busy time: total milliseconds the engine spent executing
    // operations (gaps waiting on stream dependencies excluded).  Busy times
    // sum to serialized_ms(); each is <= elapsed_ms() by construction.
    [[nodiscard]] double h2d_busy_ms() const { return h2d_busy_; }
    [[nodiscard]] double compute_busy_ms() const { return compute_busy_; }
    [[nodiscard]] double d2h_busy_ms() const { return d2h_busy_; }

    // Engine utilization: busy time over the modeled makespan (0 when the
    // timeline is empty).  A saturated pipeline drives the bottleneck engine
    // toward 1.0; a single stream leaves every engine fractional.
    [[nodiscard]] double h2d_utilization() const { return utilization(h2d_busy_); }
    [[nodiscard]] double compute_utilization() const { return utilization(compute_busy_); }
    [[nodiscard]] double d2h_utilization() const { return utilization(d2h_busy_); }

  private:
    void enqueue(std::size_t stream, double& engine_ready, double& engine_busy, double ms,
                 const char* engine);
    [[nodiscard]] double utilization(double busy) const {
        const double e = elapsed_ms();
        return e > 0.0 ? busy / e : 0.0;
    }

    Device* fault_device_ = nullptr;
    std::vector<double> stream_ready_;
    double h2d_ready_ = 0.0;
    double d2h_ready_ = 0.0;
    double compute_ready_ = 0.0;
    double h2d_busy_ = 0.0;
    double d2h_busy_ = 0.0;
    double compute_busy_ = 0.0;
    double serialized_ = 0.0;
};

}  // namespace simt
