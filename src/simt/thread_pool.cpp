#include "simt/thread_pool.hpp"

#include <utility>

namespace simt {

ThreadPool::~ThreadPool() {
    {
        const std::scoped_lock lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) t.join();
}

void ThreadPool::reserve_slots(unsigned workers) {
    while (slots_.size() < workers) slots_.push_back(std::make_unique<BlockCtx>());
}

void ThreadPool::ensure_threads(unsigned count) {
    while (threads_.size() < count) {
        const auto index = static_cast<unsigned>(threads_.size());
        threads_.emplace_back([this, index] { worker_main(index); });
    }
}

void ThreadPool::run(unsigned workers, const std::function<void(unsigned)>& task) {
    if (workers == 0) return;
    reserve_slots(workers);
    if (workers == 1) {
        task(0);
        return;
    }
    ensure_threads(workers - 1);
    {
        const std::scoped_lock lock(mutex_);
        task_ = &task;
        participants_ = workers - 1;
        remaining_ = workers - 1;
        failure_ = nullptr;
        ++generation_;
    }
    work_cv_.notify_all();
    // The caller is worker 0: it does real work instead of sleeping in join().
    try {
        task(0);
    } catch (...) {
        const std::scoped_lock lock(mutex_);
        if (!failure_) failure_ = std::current_exception();
    }
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    task_ = nullptr;
    participants_ = 0;
    if (failure_) {
        const std::exception_ptr f = std::exchange(failure_, nullptr);
        lock.unlock();
        std::rethrow_exception(f);
    }
}

void ThreadPool::worker_main(unsigned index) {
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(unsigned)>* task = nullptr;
        {
            std::unique_lock lock(mutex_);
            work_cv_.wait(lock, [&] {
                return stopping_ || (generation_ != seen && index < participants_);
            });
            if (stopping_) return;
            seen = generation_;
            task = task_;
        }
        try {
            (*task)(index + 1);  // worker 0 is the calling thread
        } catch (...) {
            const std::scoped_lock lock(mutex_);
            if (!failure_) failure_ = std::current_exception();
        }
        {
            const std::scoped_lock lock(mutex_);
            if (--remaining_ == 0) done_cv_.notify_one();
        }
    }
}

}  // namespace simt
