#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace simt::faults {

/// Kinds of injectable faults (see FaultPlan for trigger semantics).
enum class FaultKind : std::uint8_t { AllocFail, LaunchFail, Corrupt, Stall, Hang };

[[nodiscard]] inline const char* to_string(FaultKind k) {
    switch (k) {
        case FaultKind::AllocFail: return "alloc-fail";
        case FaultKind::LaunchFail: return "launch-fail";
        case FaultKind::Corrupt: return "corrupt";
        case FaultKind::Stall: return "stall";
        case FaultKind::Hang: return "hang";
    }
    return "?";
}

/// One fired injection: which kind, at which ordinal of that kind's event
/// stream, on what target (kernel name, engine, device offset...).
struct FaultEvent {
    FaultKind kind = FaultKind::AllocFail;
    std::uint64_t ordinal = 0;  ///< 1-based ordinal within the kind's stream
    std::string target;
    std::string detail;
};

/// Per-kind accounting of one injector's activity since the last clear:
/// `armed` counts decision points examined, `fired` counts injections that
/// took effect, `suppressed` counts scheduled injections that could not be
/// applied (Virtual-mode memory, no live allocation to corrupt).  The
/// deterministic analog of a chaos run's incident log: same seed + same
/// workload => byte-identical report.
struct FaultReport {
    std::uint64_t alloc_checks = 0;
    std::uint64_t launch_checks = 0;
    std::uint64_t corrupt_checks = 0;
    std::uint64_t stall_checks = 0;
    std::uint64_t hang_checks = 0;

    std::uint64_t alloc_failures = 0;
    std::uint64_t launch_failures = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t stalls = 0;
    std::uint64_t hangs = 0;

    std::uint64_t suppressed = 0;
    std::vector<FaultEvent> events;

    [[nodiscard]] bool clean() const { return fired() == 0 && suppressed == 0; }
    [[nodiscard]] std::uint64_t fired() const {
        return alloc_failures + launch_failures + corruptions + stalls + hangs;
    }
    [[nodiscard]] std::uint64_t armed() const {
        return alloc_checks + launch_checks + corrupt_checks + stall_checks + hang_checks;
    }
};

/// One-line human summary of an event ("corrupt #3: 1 bit(s) ..." style).
[[nodiscard]] std::string describe(const FaultEvent& e);

/// Multi-line human summary of the whole report.
[[nodiscard]] std::string to_text(const FaultReport& report);

/// Stable JSON object for the whole report (tools/gas_chaos --json).
[[nodiscard]] std::string to_json(const FaultReport& report);

}  // namespace simt::faults
