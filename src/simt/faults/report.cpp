#include "simt/faults/report.hpp"

#include <sstream>

namespace simt::faults {

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::string describe(const FaultEvent& e) {
    std::ostringstream os;
    os << to_string(e.kind) << " #" << e.ordinal << " [" << e.target << "]: " << e.detail;
    return os.str();
}

std::string to_text(const FaultReport& report) {
    std::ostringstream os;
    os << "fault report: " << report.fired() << " fired / " << report.armed()
       << " decision points (alloc " << report.alloc_failures << "/" << report.alloc_checks
       << ", launch " << report.launch_failures << "/" << report.launch_checks << ", corrupt "
       << report.corruptions << "/" << report.corrupt_checks << ", stall " << report.stalls
       << "/" << report.stall_checks << ", hang " << report.hangs << "/" << report.hang_checks
       << "), " << report.suppressed << " suppressed\n";
    for (const FaultEvent& e : report.events) os << "  " << describe(e) << "\n";
    return os.str();
}

std::string to_json(const FaultReport& report) {
    std::ostringstream os;
    os << "{\"tool\":\"simt::faults\",\"clean\":" << (report.clean() ? "true" : "false");
    os << ",\"counts\":{\"alloc-fail\":{\"checks\":" << report.alloc_checks
       << ",\"fired\":" << report.alloc_failures
       << "},\"launch-fail\":{\"checks\":" << report.launch_checks
       << ",\"fired\":" << report.launch_failures
       << "},\"corrupt\":{\"checks\":" << report.corrupt_checks
       << ",\"fired\":" << report.corruptions
       << "},\"stall\":{\"checks\":" << report.stall_checks
       << ",\"fired\":" << report.stalls
       << "},\"hang\":{\"checks\":" << report.hang_checks
       << ",\"fired\":" << report.hangs << "}}";
    os << ",\"suppressed\":" << report.suppressed;
    os << ",\"events\":[";
    for (std::size_t i = 0; i < report.events.size(); ++i) {
        const FaultEvent& e = report.events[i];
        os << (i ? "," : "") << "{\"kind\":\"" << to_string(e.kind)
           << "\",\"ordinal\":" << e.ordinal << ",\"target\":\"" << json_escape(e.target)
           << "\",\"detail\":\"" << json_escape(e.detail) << "\"}";
    }
    os << "]}";
    return os.str();
}

}  // namespace simt::faults
