#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "simt/faults/plan.hpp"
#include "simt/faults/report.hpp"

namespace simt {

class DeviceMemory;

namespace faults {

/// Deterministic fault injector, owned by a Device and consulted from its
/// allocation / launch / timeline hooks.  Every decision is a pure function
/// of (plan.seed, event kind, event ordinal), so a run's FaultReport is
/// byte-identical across repeats, host worker counts, and event interleaving.
///
/// Hooks follow the substrate's single-caller contract (the same one
/// Device::launch has): one thread drives the device, so counters need no
/// synchronization.
class FaultInjector {
  public:
    explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

    [[nodiscard]] const FaultPlan& plan() const { return plan_; }
    [[nodiscard]] const FaultReport& report() const { return report_; }
    void clear_report() { report_ = {}; }

    /// Allocation hook: true => the caller must throw DeviceBadAlloc.
    [[nodiscard]] bool on_alloc(std::size_t bytes);

    /// Launch-entry corruption hook: applies any scheduled bit flips to a
    /// live allocation in `mem` (Virtual mode counts as suppressed).
    struct CorruptResult {
        bool fired = false;     ///< bits were flipped (or suppressed-fired)
        bool detected = false;  ///< caller must raise TransferError
        std::size_t offset = 0;
        unsigned bits = 0;
    };
    CorruptResult on_launch_corrupt(DeviceMemory& mem, const std::string& kernel);

    /// Launch-entry failure hook: true => the caller must throw LaunchFault.
    /// Returns the launch ordinal via `ordinal` for the error message.
    [[nodiscard]] bool on_launch_fail(const std::string& kernel, std::uint64_t& ordinal);

    /// Launch-entry hang hook: true => the caller must block this launch in
    /// wall time until its hang handler (or the plan's hang_max_ms safety
    /// valve) aborts it with StallFault.  Shares the launch ordinal stream —
    /// call it with the ordinal on_launch_fail returned, after that hook
    /// declined to refuse the launch.
    [[nodiscard]] bool on_launch_hang(const std::string& kernel, std::uint64_t ordinal);

    /// Timeline hook: modeled stall milliseconds to add to one engine
    /// operation (0 when no stall fires).
    [[nodiscard]] double on_engine_op(const char* engine);

  private:
    [[nodiscard]] bool fires(FaultKind kind, std::uint64_t ordinal) const;

    FaultPlan plan_;
    FaultReport report_;
    std::uint64_t alloc_seen_ = 0;
    std::uint64_t launch_seen_ = 0;
    std::uint64_t engine_seen_ = 0;
};

}  // namespace faults
}  // namespace simt
