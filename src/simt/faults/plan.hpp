#pragma once

#include <cstdint>
#include <vector>

namespace simt::faults {

/// Where an injected corruption event lands.
///  Largest — the largest live allocation.  Sort workloads keep the data
///            buffer strictly larger than splitter/boundary scratch, so this
///            deterministically targets the payload (the interesting case).
///  Random  — a seed-chosen live allocation (exercises scratch corruption).
enum class CorruptTarget : std::uint8_t { Largest, Random };

/// Deterministic fault-injection plan for a simulated device.
///
/// Two trigger mechanisms, merged per event kind:
///  * Bernoulli rates: `*_every = K` arms roughly one event in K, decided by
///    hashing (seed, kind, ordinal) — reproducible for a given seed and
///    independent of how event kinds interleave.  0 disables the kind.
///  * Explicit schedules: 1-based ordinals that always fire ("fail the 3rd
///    allocation", "corrupt at the 7th launch").
///
/// Corruption is checked at launch *entry* and models bit flips that occurred
/// in global memory since the previous launch (ECC/transfer corruption): in
/// `detected` mode the flip is applied and TransferError is thrown before the
/// kernel body runs (the ECC-abort analog); in undetected mode the flip is
/// silent and the kernel consumes corrupted data.  Because the check happens
/// at entry, memory verified by the final kernel of a pipeline and copied out
/// immediately afterwards cannot be corrupted unobserved.
///
/// A default-constructed plan injects nothing; `Device::set_fault_plan` with
/// such a plan (or never calling it) keeps the device bit-identical to an
/// uninstrumented one.
struct FaultPlan {
    std::uint64_t seed = 1;

    // Bernoulli rates ("about one in K"), 0 = off.
    std::uint64_t alloc_fail_every = 0;   ///< DeviceMemory::allocate failures
    std::uint64_t launch_fail_every = 0;  ///< Device::launch LaunchFault
    std::uint64_t corrupt_every = 0;      ///< global-memory bit flips
    std::uint64_t stall_every = 0;        ///< Timeline engine stalls
    std::uint64_t hang_every = 0;         ///< Device::launch wall-clock hangs

    // Explicit 1-based ordinals, always fire (merged with the rates).
    std::vector<std::uint64_t> alloc_fail_at;
    std::vector<std::uint64_t> launch_fail_at;
    std::vector<std::uint64_t> corrupt_at;  ///< launch ordinal at whose entry to corrupt
    std::vector<std::uint64_t> stall_at;
    std::vector<std::uint64_t> hang_at;  ///< launch ordinal at whose entry to hang

    unsigned corrupt_bits = 1;    ///< bits flipped per corruption event
    bool detected = true;         ///< true: raise TransferError; false: silent
    CorruptTarget corrupt_target = CorruptTarget::Largest;
    double stall_ms = 2.0;        ///< modeled delay added per stall event

    // Hang events block the launch in *wall* time (the stuck-kernel analog,
    // as opposed to stall_* which only inflates modeled engine time).  The
    // launch polls the device's hang handler every hang_check_us until it is
    // told to abort, or until hang_max_ms elapses — the safety valve that
    // keeps an unattended device from hanging forever.  Either exit throws
    // StallFault; the kernel body never runs.
    std::uint64_t hang_check_us = 200;  ///< handler poll interval while hung
    double hang_max_ms = 100.0;         ///< wall cap before forced abort

    [[nodiscard]] bool any() const {
        return alloc_fail_every != 0 || launch_fail_every != 0 || corrupt_every != 0 ||
               stall_every != 0 || hang_every != 0 || !alloc_fail_at.empty() ||
               !launch_fail_at.empty() || !corrupt_at.empty() || !stall_at.empty() ||
               !hang_at.empty();
    }
};

}  // namespace simt::faults
