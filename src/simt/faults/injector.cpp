#include "simt/faults/injector.hpp"

#include <algorithm>

#include "simt/device_memory.hpp"

namespace simt::faults {

namespace {

/// splitmix64 finalizer: the per-event decision hash.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t decision(std::uint64_t seed, FaultKind kind, std::uint64_t ordinal) {
    return mix64(mix64(seed ^ (static_cast<std::uint64_t>(kind) + 1) * 0x517cc1b727220a95ull) ^
                 ordinal);
}

bool scheduled(const std::vector<std::uint64_t>& at, std::uint64_t ordinal) {
    return std::find(at.begin(), at.end(), ordinal) != at.end();
}

}  // namespace

bool FaultInjector::fires(FaultKind kind, std::uint64_t ordinal) const {
    std::uint64_t rate = 0;
    const std::vector<std::uint64_t>* at = nullptr;
    switch (kind) {
        case FaultKind::AllocFail: rate = plan_.alloc_fail_every; at = &plan_.alloc_fail_at; break;
        case FaultKind::LaunchFail: rate = plan_.launch_fail_every; at = &plan_.launch_fail_at; break;
        case FaultKind::Corrupt: rate = plan_.corrupt_every; at = &plan_.corrupt_at; break;
        case FaultKind::Stall: rate = plan_.stall_every; at = &plan_.stall_at; break;
        case FaultKind::Hang: rate = plan_.hang_every; at = &plan_.hang_at; break;
    }
    if (rate != 0 && decision(plan_.seed, kind, ordinal) % rate == 0) return true;
    return scheduled(*at, ordinal);
}

bool FaultInjector::on_alloc(std::size_t bytes) {
    const std::uint64_t ordinal = ++alloc_seen_;
    ++report_.alloc_checks;
    if (!fires(FaultKind::AllocFail, ordinal)) return false;
    ++report_.alloc_failures;
    report_.events.push_back({FaultKind::AllocFail, ordinal, "allocate",
                              std::to_string(bytes) + " B request refused"});
    return true;
}

FaultInjector::CorruptResult FaultInjector::on_launch_corrupt(DeviceMemory& mem,
                                                              const std::string& kernel) {
    // The corruption stream shares the launch ordinal: "corrupt_at = {k}"
    // flips bits at the entry of the k-th launch, i.e. after launch k-1
    // completed and before kernel k consumes the data.
    const std::uint64_t ordinal = launch_seen_ + 1;
    ++report_.corrupt_checks;
    CorruptResult r;
    if (!fires(FaultKind::Corrupt, ordinal)) return r;

    std::size_t target_off = 0;
    std::size_t target_size = 0;
    if (plan_.corrupt_target == CorruptTarget::Largest) {
        std::tie(target_off, target_size) = mem.largest_live_allocation();
    } else {
        const std::size_t n = mem.allocation_count();
        if (n > 0) {
            const std::size_t pick =
                decision(plan_.seed ^ 0xc0ffee, FaultKind::Corrupt, ordinal) % n;
            std::tie(target_off, target_size) = mem.live_allocation(pick);
        }
    }
    if (target_size == 0 || mem.mode() == DeviceMemory::Mode::Virtual) {
        // Nothing to corrupt (or nothing dereferenceable): scheduled but
        // not applicable — counted so chaos runs can tell "survived" from
        // "never actually hit".
        ++report_.suppressed;
        return r;
    }

    const unsigned bits = std::max(plan_.corrupt_bits, 1u);
    for (unsigned j = 0; j < bits; ++j) {
        const std::uint64_t h =
            decision(plan_.seed ^ (0x0b1750000ull + j), FaultKind::Corrupt, ordinal);
        const std::size_t byte = target_off + h % target_size;
        *mem.translate(byte) ^= static_cast<std::byte>(1u << ((h >> 32) % 8));
        r.offset = byte;
    }
    r.fired = true;
    r.detected = plan_.detected;
    r.bits = bits;
    ++report_.corruptions;
    report_.events.push_back(
        {FaultKind::Corrupt, ordinal, kernel,
         std::to_string(bits) + " bit(s) flipped in allocation @" +
             std::to_string(target_off) + " (" + std::to_string(target_size) + " B, " +
             (plan_.detected ? "detected" : "silent") + ")"});
    return r;
}

bool FaultInjector::on_launch_fail(const std::string& kernel, std::uint64_t& ordinal) {
    ordinal = ++launch_seen_;
    ++report_.launch_checks;
    if (!fires(FaultKind::LaunchFail, ordinal)) return false;
    ++report_.launch_failures;
    report_.events.push_back({FaultKind::LaunchFail, ordinal, kernel, "launch refused"});
    return true;
}

bool FaultInjector::on_launch_hang(const std::string& kernel, std::uint64_t ordinal) {
    ++report_.hang_checks;
    if (!fires(FaultKind::Hang, ordinal)) return false;
    ++report_.hangs;
    report_.events.push_back({FaultKind::Hang, ordinal, kernel, "launch hung"});
    return true;
}

double FaultInjector::on_engine_op(const char* engine) {
    const std::uint64_t ordinal = ++engine_seen_;
    ++report_.stall_checks;
    if (!fires(FaultKind::Stall, ordinal)) return 0.0;
    ++report_.stalls;
    report_.events.push_back({FaultKind::Stall, ordinal, engine,
                              "+" + std::to_string(plan_.stall_ms) + " ms engine stall"});
    return plan_.stall_ms;
}

}  // namespace simt::faults
