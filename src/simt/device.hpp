#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "simt/cost_model.hpp"
#include "simt/device_memory.hpp"
#include "simt/device_properties.hpp"
#include "simt/faults/injector.hpp"
#include "simt/kernel.hpp"
#include "simt/sanitize/finding.hpp"
#include "simt/sanitize/options.hpp"
#include "simt/thread_pool.hpp"

namespace simt {

class Graph;
struct GraphStats;
namespace detail {
struct BlockRecord;
}

/// A simulated SIMT device: properties + global memory + kernel launcher +
/// a log of every launch's modeled cost.
class Device {
  public:
    explicit Device(DeviceProperties props = tesla_k40c(),
                    DeviceMemory::Mode mode = DeviceMemory::Mode::Backed,
                    unsigned host_workers = 1)
        : props_(std::move(props)),
          memory_(props_.global_memory_bytes, mode),
          cost_model_(props_),
          host_workers_(std::max(host_workers, 1u)),
          sanitize_options_(sanitize::SanitizeOptions::from_env()) {}

    [[nodiscard]] const DeviceProperties& props() const { return props_; }
    [[nodiscard]] DeviceMemory& memory() { return memory_; }
    [[nodiscard]] const DeviceMemory& memory() const { return memory_; }
    [[nodiscard]] const CostModel& cost_model() const { return cost_model_; }

    /// Lane execution order for subsequent launches (race detection in tests).
    void set_thread_order(ThreadOrder order) { thread_order_ = order; }
    [[nodiscard]] ThreadOrder thread_order() const { return thread_order_; }

    /// Interpreter execution mode for subsequent launches.  Defaults from
    /// the SIMT_EXEC environment variable (normally: Scalar, the reference
    /// interpreter); Warp batches for_each_warp regions a lane group at a
    /// time with bit-identical output bytes and KernelStats.
    void set_exec_mode(ExecMode mode) { exec_mode_ = mode; }
    [[nodiscard]] ExecMode exec_mode() const { return exec_mode_; }

    /// Host worker threads simulating blocks concurrently (default 1 =
    /// sequential).  Blocks of a well-formed kernel touch disjoint global
    /// data, so results are identical for any worker count; per-block costs
    /// are recorded by block index, keeping modeled time deterministic too.
    /// Kernels needing per-resident-block scratch key it off BlockCtx::slot().
    void set_host_workers(unsigned workers) { host_workers_ = std::max(workers, 1u); }
    [[nodiscard]] unsigned host_workers() const { return host_workers_; }

    /// Runs `body` once per block, functionally simulating the kernel, and
    /// returns modeled + measured cost.  The stats are also appended to the
    /// device's kernel log.
    KernelStats launch(const LaunchConfig& cfg, const std::function<void(BlockCtx&)>& body);

    /// Executes a whole work graph (simt/graph.hpp) in one scheduling
    /// round-trip: the worker pool is woken once and stays resident while
    /// every node — including dynamically enqueued ones — drains.  Each
    /// kernel node goes through the same validation, fault hooks, per-block
    /// execution, and block-order aggregation as launch(), so its
    /// KernelStats (and the kernel log) are bit-identical to the
    /// equivalent loop of launches.  Defined in graph.cpp.
    GraphStats submit(Graph& graph);

    /// Cumulative counters over every submit() on this device, consumed by
    /// the serve layer's observability ("graph" stats block).
    struct GraphTelemetry {
        std::uint64_t graphs = 0;           ///< graphs submitted
        std::uint64_t nodes = 0;            ///< nodes executed (kernel + host)
        std::uint64_t kernel_nodes = 0;     ///< kernel nodes executed
        std::uint64_t host_nodes = 0;       ///< host decision nodes executed
        std::uint64_t device_enqueued = 0;  ///< nodes enqueued mid-execution
        std::uint64_t pruned = 0;           ///< nodes skipped (gate or prune)
    };
    [[nodiscard]] const GraphTelemetry& graph_telemetry() const {
        return graph_telemetry_;
    }
    void clear_graph_telemetry() { graph_telemetry_ = {}; }

    [[nodiscard]] const std::vector<KernelStats>& kernel_log() const { return kernel_log_; }
    void clear_kernel_log() { kernel_log_.clear(); }

    /// The compute-sanitizer analog (simt::sanitize).  Defaults come from
    /// the GAS_SANITIZE_RUNTIME environment variable (normally: all off).
    /// Checks never touch LaneCounters or KernelStats — enabling them
    /// changes only the sanitize report, never modeled results.
    void set_sanitize_options(const sanitize::SanitizeOptions& opts) {
        sanitize_options_ = opts;
    }
    [[nodiscard]] const sanitize::SanitizeOptions& sanitize_options() const {
        return sanitize_options_;
    }
    /// Findings + per-launch statistics accumulated since the last clear.
    [[nodiscard]] const sanitize::SanitizeReport& sanitize_report() const {
        return sanitize_report_;
    }
    void clear_sanitize_report() { sanitize_report_ = {}; }

    /// Deterministic fault injection (simt::faults).  Off by default: the
    /// injector does not exist, hooks are single null-pointer checks, and
    /// KernelStats stay bit-identical to an uninstrumented device (asserted
    /// by tests, like the sanitizer's off-mode guarantee).  Installing a plan
    /// replaces any previous injector and resets its report.
    void set_fault_plan(faults::FaultPlan plan) {
        faults_ = std::make_unique<faults::FaultInjector>(std::move(plan));
        memory_.set_fault_injector(faults_.get());
    }
    void clear_fault_plan() {
        memory_.set_fault_injector(nullptr);
        faults_.reset();
    }
    /// Current injector (null when no plan is installed).  Timeline and
    /// other consumers poll this so plans installed later still apply.
    [[nodiscard]] faults::FaultInjector* fault_injector() { return faults_.get(); }
    /// Events fired/armed/suppressed since the plan was installed (an empty
    /// report when no plan is).
    [[nodiscard]] const faults::FaultReport& fault_report() const {
        static const faults::FaultReport kEmpty;
        return faults_ ? faults_->report() : kEmpty;
    }
    void clear_fault_report() {
        if (faults_) faults_->clear_report();
    }

    /// Heartbeat: a monotonically increasing tick, bumped at every launch
    /// entry and completion (and at each graph node as it settles).  A
    /// watchdog on another thread can poll this — the only Device member
    /// safe to read off the owning thread — to distinguish a device that is
    /// making progress from one that is hung.
    [[nodiscard]] std::uint64_t progress_ticks() const {
        return progress_ticks_.load(std::memory_order_relaxed);
    }

    /// What a hang handler tells a hung launch to do on each poll.
    enum class HangAction : std::uint8_t { Wait, Abort };

    /// Installed by a supervisor (gas::health watchdog): consulted every
    /// plan.hang_check_us while an injected hang holds a launch.  Returning
    /// Abort makes the launch throw StallFault immediately instead of
    /// waiting out the plan's hang_max_ms safety valve.  The handler runs on
    /// the launching thread and must not call back into the device.
    void set_hang_handler(std::function<HangAction()> handler) {
        hang_handler_ = std::move(handler);
    }

    /// Sum of modeled_ms over the kernel log (one sequential stream).
    [[nodiscard]] double total_modeled_ms() const;
    /// Sum of wall_ms over the kernel log.
    [[nodiscard]] double total_wall_ms() const;

    /// Models a host<->device transfer of `bytes` over PCIe; returns modeled
    /// milliseconds (the caller does the actual memcpy through buffers).
    [[nodiscard]] double transfer_ms(std::size_t bytes) const {
        return static_cast<double>(bytes) / (props_.pcie_bandwidth_gbps * 1e9) * 1e3;
    }

  private:
    /// The persistent worker pool (and its BlockCtx slots), created on first
    /// launch and kept for the device's lifetime: repeated launches reuse
    /// parked threads and warm shared-memory arenas instead of spawning and
    /// allocating per launch.
    ThreadPool& pool() {
        if (!pool_) pool_ = std::make_unique<ThreadPool>();
        return *pool_;
    }

    /// Pre-launch gate shared by launch() and submit(): configuration
    /// validation plus the fault-injection hooks, in that order, so a
    /// kernel refused by either never runs a block or logs stats.
    void check_launch(const LaunchConfig& cfg);
    /// Post-execution core shared by launch() and submit(): block-order
    /// aggregation of the per-block records, cost-model finalization, the
    /// kernel-log append, and the sanitize merge (strict mode throws).
    KernelStats finish_launch(const LaunchConfig& cfg,
                              std::vector<detail::BlockRecord>& records,
                              double wall_ms);

    DeviceProperties props_;
    DeviceMemory memory_;
    CostModel cost_model_;
    ThreadOrder thread_order_ = ThreadOrder::Forward;
    ExecMode exec_mode_ = exec_mode_from_env();
    unsigned host_workers_ = 1;
    std::unique_ptr<ThreadPool> pool_;
    std::vector<KernelStats> kernel_log_;
    GraphTelemetry graph_telemetry_;
    sanitize::SanitizeOptions sanitize_options_;
    sanitize::SanitizeReport sanitize_report_;
    std::unique_ptr<faults::FaultInjector> faults_;
    std::atomic<std::uint64_t> progress_ticks_{0};
    std::function<HangAction()> hang_handler_;

    void bump_progress() { progress_ticks_.fetch_add(1, std::memory_order_relaxed); }
    friend class Graph;  // graph executor publishes node-granular heartbeats
};

}  // namespace simt
