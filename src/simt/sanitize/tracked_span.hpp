#pragma once

#include <cstddef>
#include <span>
#include <type_traits>

#include "simt/sanitize/shadow.hpp"

namespace simt::sanitize {

template <typename T>
class TrackedSpan;

/// Proxy reference returned by TrackedSpan::operator[].  Reads (conversion
/// to value) and writes (assignment, increments) report to the slot's
/// shadow state; with no shadow attached it degrades to raw indexing, so
/// kernels written against TrackedSpan cost nothing when the sanitizer is
/// off.  An out-of-bounds proxy suppresses the underlying access entirely:
/// reads yield value-initialized T, writes are dropped — a detected bug
/// cannot corrupt the simulator's own heap.
template <typename T>
class TrackedRef {
    using V = std::remove_const_t<T>;

  public:
    TrackedRef(T* p, SlotShadow* shadow, MemSpace space, std::size_t byte_off,
               std::size_t view_bytes, bool oob)
        : p_(p), shadow_(shadow), byte_off_(byte_off), view_bytes_(view_bytes),
          space_(space), oob_(oob) {}

    TrackedRef(const TrackedRef&) = default;

    [[nodiscard]] V load() const {
        if (shadow_ != nullptr) {
            if (oob_) {
                shadow_->record_oob(space_, byte_off_, view_bytes_, /*write=*/false);
                return V{};
            }
            record(/*write=*/false, /*atomic=*/false);
        }
        return *p_;
    }

    void store(V v) const {
        static_assert(!std::is_const_v<T>, "cannot write through a const tracked view");
        if (shadow_ != nullptr) {
            if (oob_) {
                shadow_->record_oob(space_, byte_off_, view_bytes_, /*write=*/true);
                return;
            }
            record(/*write=*/true, /*atomic=*/false);
        }
        *p_ = v;
    }

    operator V() const { return load(); }  // NOLINT(google-explicit-constructor)

    const TrackedRef& operator=(V v) const {
        store(v);
        return *this;
    }
    const TrackedRef& operator=(const TrackedRef& o) const {
        store(o.load());
        return *this;
    }
    template <typename U>
    const TrackedRef& operator=(const TrackedRef<U>& o) const {
        store(static_cast<V>(o.load()));
        return *this;
    }

    const TrackedRef& operator+=(V v) const { store(static_cast<V>(load() + v)); return *this; }
    const TrackedRef& operator-=(V v) const { store(static_cast<V>(load() - v)); return *this; }
    const TrackedRef& operator++() const { return *this += V{1}; }
    const TrackedRef& operator--() const { return *this -= V{1}; }
    V operator++(int) const {
        const V old = load();
        store(static_cast<V>(old + V{1}));
        return old;
    }
    V operator--(int) const {
        const V old = load();
        store(static_cast<V>(old - V{1}));
        return old;
    }

  private:
    void record(bool write, bool atomic) const {
        if (space_ == MemSpace::Shared) {
            shadow_->record_shared(byte_off_, sizeof(T), write, atomic);
        } else {
            shadow_->record_global(p_, sizeof(T), write, atomic);
        }
    }

    template <typename U>
    friend class TrackedSpan;

    T* p_;
    SlotShadow* shadow_;
    std::size_t byte_off_;
    std::size_t view_bytes_;
    MemSpace space_;
    bool oob_;
};

/// Checked accessor view over a shared-arena or device-global range — the
/// sanitizer's replacement for std::span in kernel code.
///
/// With no shadow attached (sanitizer off, the default) every operation is
/// the raw std::span behavior, including unchecked indexing, so the default
/// path is bit-identical to pre-sanitizer builds.  With a shadow, indexed
/// accesses are bounds-checked against the view and recorded per 4-byte
/// word for race/init/bank analysis.
///
/// Escape hatches: data()/begin()/end()/raw() expose raw pointers for
/// std:: algorithms (std::lower_bound over splitters); accesses through
/// them are *not* tracked, which is fine for read-only probes of memory the
/// kernel initialized through tracked writes.
template <typename T>
class TrackedSpan {
  public:
    using value_type = std::remove_const_t<T>;
    using element_type = T;

    TrackedSpan() = default;

    TrackedSpan(std::span<T> s, SlotShadow* shadow, MemSpace space,
                std::size_t base_byte)
        : span_(s), shadow_(shadow), base_byte_(base_byte), space_(space) {}

    /// Untracked view (what a raw span would have been).
    explicit TrackedSpan(std::span<T> s) : span_(s) {}

    /// Mutable -> const view conversion.
    template <typename U>
        requires(std::is_const_v<T> && std::is_same_v<std::remove_const_t<T>, U>)
    TrackedSpan(const TrackedSpan<U>& o)  // NOLINT(google-explicit-constructor)
        : span_(o.raw()), shadow_(o.shadow()), base_byte_(o.base_byte()),
          space_(o.space()) {}

    [[nodiscard]] std::size_t size() const { return span_.size(); }
    [[nodiscard]] std::size_t size_bytes() const { return span_.size_bytes(); }
    [[nodiscard]] bool empty() const { return span_.empty(); }

    [[nodiscard]] TrackedRef<T> operator[](std::size_t i) const {
        if (shadow_ == nullptr) {
            return {span_.data() + i, nullptr, space_, 0, 0, false};
        }
        if (i >= span_.size()) {
            return {span_.data(), shadow_, space_, i * sizeof(T), span_.size_bytes(),
                    /*oob=*/true};
        }
        return {span_.data() + i, shadow_, space_, base_byte_ + i * sizeof(T),
                span_.size_bytes(), /*oob=*/false};
    }

    /// Atomic read-modify-write (atomicAdd analog): recorded as an atomic
    /// access, which racecheck exempts from atomic-vs-atomic hazards.
    value_type atomic_fetch_add(std::size_t i, value_type delta) const {
        static_assert(!std::is_const_v<T>);
        if (shadow_ != nullptr) {
            if (i >= span_.size()) {
                shadow_->record_oob(space_, i * sizeof(T), span_.size_bytes(), true);
                return value_type{};
            }
            if (space_ == MemSpace::Shared) {
                shadow_->record_shared(base_byte_ + i * sizeof(T), sizeof(T), true, true);
            } else {
                shadow_->record_global(span_.data() + i, sizeof(T), true, true);
            }
        }
        const value_type old = span_[i];
        span_[i] = static_cast<value_type>(old + delta);
        return old;
    }

    [[nodiscard]] TrackedSpan subspan(std::size_t offset,
                                      std::size_t count = std::dynamic_extent) const {
        return {span_.subspan(offset, count), shadow_, space_,
                base_byte_ + offset * sizeof(T)};
    }
    [[nodiscard]] TrackedSpan first(std::size_t count) const { return subspan(0, count); }

    /// Raw escapes (untracked; see class comment).
    [[nodiscard]] T* data() const { return span_.data(); }
    [[nodiscard]] T* begin() const { return span_.data(); }
    [[nodiscard]] T* end() const { return span_.data() + span_.size(); }
    [[nodiscard]] std::span<T> raw() const { return span_; }
    operator std::span<T>() const { return span_; }  // NOLINT(google-explicit-constructor)

    [[nodiscard]] SlotShadow* shadow() const { return shadow_; }
    [[nodiscard]] MemSpace space() const { return space_; }
    [[nodiscard]] std::size_t base_byte() const { return base_byte_; }

  private:
    std::span<T> span_;
    SlotShadow* shadow_ = nullptr;
    std::size_t base_byte_ = 0;
    MemSpace space_ = MemSpace::Shared;
};

}  // namespace simt::sanitize
