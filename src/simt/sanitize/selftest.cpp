#include "simt/sanitize/selftest.hpp"

#include <sstream>

#include "simt/device.hpp"
#include "simt/device_buffer.hpp"

namespace simt::sanitize {

const char* to_string(SeededBug bug) {
    switch (bug) {
        case SeededBug::NeighbourWrite: return "neighbour-write";
        case SeededBug::SharedOverflow: return "shared-overflow";
        case SeededBug::UninitRead: return "uninit-read";
        case SeededBug::BankConflictStride: return "bank-conflict-stride";
    }
    return "?";
}

FindingKind expected_kind(SeededBug bug) {
    switch (bug) {
        case SeededBug::NeighbourWrite: return FindingKind::Race;
        case SeededBug::SharedOverflow: return FindingKind::OutOfBounds;
        case SeededBug::UninitRead: return FindingKind::UninitRead;
        case SeededBug::BankConflictStride: return FindingKind::BankConflict;
    }
    return FindingKind::Race;
}

namespace {

void launch_neighbour_write(Device& device) {
    constexpr unsigned kLanes = 8;
    DeviceBuffer<std::uint32_t> buckets(device, kLanes);
    device.launch({"selftest.neighbour_write", 1, kLanes}, [&](BlockCtx& blk) {
        auto out = blk.global_view(buckets.span());
        blk.for_each_thread([&](ThreadCtx& tc) {
            out[tc.tid()] = tc.tid();
            // The bug: also claim the neighbour's slot, with no barrier
            // separating the two writes.
            out[(tc.tid() + 1) % kLanes] = tc.tid();
            tc.global_random(2);
        });
    });
}

void launch_shared_overflow(Device& device) {
    constexpr unsigned kLanes = 16;
    device.launch({"selftest.shared_overflow", 1, kLanes}, [&](BlockCtx& blk) {
        auto tile = blk.shared_alloc<std::uint32_t>(kLanes);
        blk.for_each_thread([&](ThreadCtx& tc) {
            tile[tc.tid()] = tc.tid();
            // The bug: lane kLanes-1 also writes one past the allocation
            // (the p+1-splitters off-by-one).
            if (tc.tid() + 1 == kLanes) tile[kLanes] = 0;
            tc.shared(1);
        });
    });
}

void launch_uninit_read(Device& device) {
    constexpr unsigned kLanes = 4;
    DeviceBuffer<std::uint32_t> sink(device, kLanes);
    device.launch({"selftest.uninit_read", 1, kLanes}, [&](BlockCtx& blk) {
        auto tile = blk.shared_alloc<std::uint32_t>(kLanes);
        auto out = blk.global_view(sink.span());
        blk.for_each_thread([&](ThreadCtx& tc) {
            // The bug: the staging region that should have filled `tile`
            // was forgotten; whatever the pooled slot's previous block left
            // in the arena leaks through.
            out[tc.tid()] = tile[tc.tid()];
            tc.shared(1);
            tc.global_random(1);
        });
    });
}

void launch_bank_conflict(Device& device) {
    constexpr unsigned kLanes = 32;
    device.launch({"selftest.bank_stride", 1, kLanes}, [&](BlockCtx& blk) {
        auto tile = blk.shared_alloc<std::uint32_t>(kLanes * kLanes);
        blk.for_each_thread([&](ThreadCtx& tc) {
            // The bug: row-major striding puts every lane of the warp on
            // bank 0 (word index is a multiple of 32) -> 32-way serialized.
            for (unsigned k = 0; k < 4; ++k) {
                tile[tc.tid() * kLanes] = tc.tid() + k;
            }
            tc.shared(4);
        });
    });
}

void launch_clean_control(Device& device) {
    constexpr unsigned kLanes = 32;
    DeviceBuffer<std::uint32_t> sink(device, kLanes);
    device.launch({"selftest.clean_control", 2, kLanes}, [&](BlockCtx& blk) {
        auto tile = blk.shared_alloc<std::uint32_t>(kLanes);
        auto out = blk.global_view(sink.span());
        blk.for_each_thread([&](ThreadCtx& tc) {
            tile[tc.tid()] = tc.tid() * 3u;
            tc.shared(1);
        });
        blk.for_each_thread([&](ThreadCtx& tc) {
            // Reads another lane's word — legal, a barrier separates it
            // from the write above.
            const std::uint32_t v = tile[(tc.tid() + 1) % kLanes];
            if (blk.block_idx() == 0) out[tc.tid()] = v;
            tc.shared(1);
            tc.global_random(1);
        });
    });
}

void launch_bug(Device& device, SeededBug bug) {
    switch (bug) {
        case SeededBug::NeighbourWrite: launch_neighbour_write(device); break;
        case SeededBug::SharedOverflow: launch_shared_overflow(device); break;
        case SeededBug::UninitRead: launch_uninit_read(device); break;
        case SeededBug::BankConflictStride: launch_bank_conflict(device); break;
    }
}

}  // namespace

SanitizeReport run_seeded_bug(Device& device, SeededBug bug) {
    const SanitizeOptions saved = device.sanitize_options();
    SanitizeOptions all = SanitizeOptions::all();
    all.strict = false;  // the point is to *collect* the findings
    device.set_sanitize_options(all);
    device.clear_sanitize_report();
    launch_bug(device, bug);
    SanitizeReport report = device.sanitize_report();
    device.clear_sanitize_report();
    device.set_sanitize_options(saved);
    return report;
}

SelfTest run_selftest(Device& device) {
    SelfTest result;
    result.ok = true;
    std::ostringstream log;

    const SeededBug bugs[] = {SeededBug::NeighbourWrite, SeededBug::SharedOverflow,
                              SeededBug::UninitRead, SeededBug::BankConflictStride};
    for (SeededBug bug : bugs) {
        const SanitizeReport rep = run_seeded_bug(device, bug);
        const std::size_t hits = rep.count(expected_kind(bug));
        const bool found = hits > 0;
        result.ok = result.ok && found;
        log << (found ? "PASS" : "FAIL") << "  " << to_string(bug) << " -> "
            << to_string(expected_kind(bug)) << " (" << hits << " finding(s))\n";
    }

    {
        const SanitizeOptions saved = device.sanitize_options();
        SanitizeOptions all = SanitizeOptions::all();
        all.strict = false;
        device.set_sanitize_options(all);
        device.clear_sanitize_report();
        launch_clean_control(device);
        const bool clean = device.sanitize_report().clean();
        result.ok = result.ok && clean;
        log << (clean ? "PASS" : "FAIL") << "  clean-control -> no findings\n";
        device.clear_sanitize_report();
        device.set_sanitize_options(saved);
    }

    result.log = log.str();
    return result;
}

}  // namespace simt::sanitize
