#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace simt::sanitize {

/// Which memory space a tracked access touched.
enum class MemSpace : std::uint8_t { Shared, Global };

[[nodiscard]] inline const char* to_string(MemSpace s) {
    return s == MemSpace::Shared ? "shared" : "global";
}

/// Finding taxonomy, mirroring the compute-sanitizer tools:
///  Race         racecheck: two lanes, same word, same thread region, >= 1
///               non-atomic write.
///  OutOfBounds  memcheck: index beyond a tracked view's extent.  The access
///               is suppressed (reads return T{}), so a detected bug cannot
///               corrupt the simulator's own heap.
///  UninitRead   initcheck: shared-arena word read before any write since
///               the block began (pooled-slot arena contents are unspecified).
///  BankConflict bankcheck: a thread region whose worst shared-memory bank
///               serialization reached kSevereBankDegree lanes.
enum class FindingKind : std::uint8_t { Race, OutOfBounds, UninitRead, BankConflict };

[[nodiscard]] inline const char* to_string(FindingKind k) {
    switch (k) {
        case FindingKind::Race: return "race";
        case FindingKind::OutOfBounds: return "out-of-bounds";
        case FindingKind::UninitRead: return "uninit-read";
        case FindingKind::BankConflict: return "bank-conflict";
    }
    return "?";
}

/// One detected violation, located as precisely as the simulator knows it:
/// kernel, block, barrier-delimited region index, lane(s) and byte offset
/// (arena-relative for shared, view-relative for global).
struct Finding {
    FindingKind kind = FindingKind::Race;
    MemSpace space = MemSpace::Shared;
    std::string kernel;
    unsigned block = 0;
    unsigned region = 0;
    unsigned lane = 0;        ///< lane performing the triggering access
    unsigned other_lane = 0;  ///< races: the earlier accessor of the word
    std::size_t offset = 0;   ///< byte offset (see above)
    bool write = false;       ///< triggering access was a write
    std::string detail;       ///< human-readable specifics
};

/// Per-launch sanitizer statistics, the analog of one KernelStats row:
/// recorded for every launch while any check is enabled, findings or not,
/// so clean runs still document what was checked.
struct LaunchSanitizeStats {
    std::string kernel;
    unsigned grid_dim = 0;
    unsigned block_dim = 0;
    std::uint64_t tracked_accesses = 0;      ///< accesses routed through shadow state
    std::uint64_t bank_conflict_cycles = 0;  ///< extra serialized cycles, summed
    unsigned worst_bank_degree = 1;          ///< worst lanes-per-bank serialization
    std::size_t findings = 0;                ///< findings this launch produced
};

/// Everything the sanitizer learned on a device since the last clear():
/// the flat findings list (deterministic: launch order, then block order,
/// then detection order within a block) plus per-launch statistics.
struct SanitizeReport {
    std::vector<Finding> findings;
    std::vector<LaunchSanitizeStats> launches;
    std::size_t suppressed = 0;  ///< findings dropped by the per-launch cap

    [[nodiscard]] bool clean() const { return findings.empty() && suppressed == 0; }

    [[nodiscard]] std::size_t count(FindingKind k) const {
        std::size_t n = 0;
        for (const Finding& f : findings) n += f.kind == k ? 1 : 0;
        return n;
    }
};

/// One-line human summary of a finding ("race: lanes 3/4 ..." style).
[[nodiscard]] std::string describe(const Finding& f);

/// Structured JSON object for the whole report (tools/gas_check --json).
[[nodiscard]] std::string to_json(const SanitizeReport& report);

}  // namespace simt::sanitize
