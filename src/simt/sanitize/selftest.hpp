#pragma once

#include <string>

#include "simt/sanitize/finding.hpp"

namespace simt {
class Device;
}

namespace simt::sanitize {

/// Deliberately seeded kernel bugs, one per finding kind.  These are the
/// sanitizer's mutation-test fixtures: each kernel is the minimal version
/// of a real GPU-ArraySort failure mode, and the sanitizer must flag it
/// with exactly the right finding kind.
enum class SeededBug {
    /// A lane scatters into its neighbour's bucket slot: two lanes write
    /// the same global word in one thread region -> Race.
    NeighbourWrite,
    /// Off-by-one past a shared allocation (the classic p+1-splitters
    /// sizing bug) -> OutOfBounds.
    SharedOverflow,
    /// Reading the shared arena before initializing it; pooled-slot reuse
    /// makes whatever the previous launch left there look plausible ->
    /// UninitRead.
    UninitRead,
    /// Column-major striding where every lane of the warp hits the same
    /// 4-byte bank -> BankConflict.
    BankConflictStride,
};

[[nodiscard]] const char* to_string(SeededBug bug);

/// The finding kind `bug` must produce.
[[nodiscard]] FindingKind expected_kind(SeededBug bug);

/// Runs the buggy kernel for `bug` on `device` with every check enabled
/// (strict off; the caller's sanitize options are restored afterwards) and
/// returns the sanitize report of just that run.  Clears the device's
/// sanitize report.
SanitizeReport run_seeded_bug(Device& device, SeededBug bug);

/// Runs all four seeded bugs plus one clean control kernel; ok iff every
/// bug was flagged with its expected kind and the control run was clean.
struct SelfTest {
    bool ok = false;
    std::string log;
};
SelfTest run_selftest(Device& device);

}  // namespace simt::sanitize
