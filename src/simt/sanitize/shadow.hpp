#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "simt/sanitize/finding.hpp"
#include "simt/sanitize/options.hpp"

namespace simt::sanitize {

/// Bank-serialization degree at which a region's conflicts stop being a
/// statistic and become a BankConflict finding (half-warp serialization).
inline constexpr unsigned kSevereBankDegree = 16;

/// Shared memory bank geometry: 32 banks, 4-byte words.
inline constexpr unsigned kBanks = 32;
inline constexpr unsigned kWarpSize = 32;

/// Per-execution-slot shadow state behind the tracked accessors.
///
/// One SlotShadow belongs to one BlockCtx (one persistent-pool slot), so the
/// multi-worker simulator needs no locking: a slot's shadow is only touched
/// by the worker that owns the slot, exactly like the slot's shared arena.
/// Lifetime mirrors the arena's: word states are invalidated when the next
/// block starts (begin_block), and the init map is what makes pooled-slot
/// arena reuse checkable — a word is "initialized" only if the *current*
/// block wrote it, no matter what a previous launch left behind.
///
/// Race model: the substrate's barrier-synchronous contract makes every
/// for_each_thread/single_thread call one "region" delimited by implicit
/// __syncthreads().  Two different lanes touching the same 4-byte word in
/// the same region, with at least one non-atomic write, is a race no matter
/// how the simulator happened to order the lanes — this is strictly stronger
/// than the ThreadOrder::Forward/Reverse probe, which only notices races
/// whose effects do not commute.
class SlotShadow {
  public:
    /// (Re)arms the shadow for launches with `opts` over an arena of
    /// `shared_capacity` bytes.  Keeps allocated storage across launches.
    void configure(const SanitizeOptions& opts, std::size_t shared_capacity);

    /// Launch-scope identity used to label findings.
    void begin_launch(const std::string& kernel, unsigned block_dim);

    void begin_block(unsigned block_idx);
    void begin_region();              ///< barrier: closes the previous region
    void set_lane(unsigned lane) { lane_ = lane; }
    void end_block();                 ///< closes the final region

    /// Tracked accesses (called by TrackedSpan/TrackedRef, enabled path only).
    void record_shared(std::size_t byte_off, std::size_t bytes, bool write, bool atomic);
    void record_global(const void* addr, std::size_t bytes, bool write, bool atomic);
    /// An index beyond a tracked view: records the finding; the caller
    /// suppresses the real access.
    void record_oob(MemSpace space, std::size_t byte_off, std::size_t view_bytes,
                    bool write);

    [[nodiscard]] const SanitizeOptions& options() const { return opts_; }

    /// Everything one finished block produced; resets the block accumulators.
    struct BlockResult {
        std::vector<Finding> findings;
        std::size_t suppressed = 0;
        std::uint64_t tracked_accesses = 0;
        std::uint64_t bank_conflict_cycles = 0;
        unsigned worst_bank_degree = 1;
    };
    [[nodiscard]] BlockResult take_block_result();

  private:
    /// Per-word shadow cell.  Region-scoped flag bits are reset lazily: a
    /// cell whose `region` differs from the current region is treated as
    /// untouched-this-region, so barriers cost nothing per word.
    struct Word {
        std::uint32_t region = 0;  ///< 0 = untouched this block
        std::uint32_t lane = 0;    ///< first lane to touch it this region
        std::uint8_t flags = 0;
    };
    static constexpr std::uint8_t kInit = 1;          ///< written this block
    static constexpr std::uint8_t kPlainWrite = 2;    ///< region-scoped
    static constexpr std::uint8_t kPlainRead = 4;     ///< region-scoped
    static constexpr std::uint8_t kAtomicAcc = 8;     ///< region-scoped
    static constexpr std::uint8_t kMultiLane = 16;    ///< region-scoped
    static constexpr std::uint8_t kRaceSeen = 32;     ///< region-scoped dedup
    static constexpr std::uint8_t kUninitSeen = 64;   ///< block-scoped dedup
    static constexpr std::uint8_t kRegionBits =
        kPlainWrite | kPlainRead | kAtomicAcc | kMultiLane | kRaceSeen;

    void touch(Word& w, MemSpace space, std::size_t offset, bool write, bool atomic,
               bool init_checked);
    void add_finding(Finding f);
    void close_region();  ///< bank-conflict analysis over the ended region

    SanitizeOptions opts_;
    std::string kernel_ = "?";
    unsigned block_dim_ = 0;
    unsigned block_idx_ = 0;
    unsigned lane_ = 0;
    std::uint32_t region_ = 0;

    std::vector<Word> shared_;                          ///< arena words
    std::unordered_map<std::uintptr_t, Word> global_;   ///< addr>>2 -> word

    /// Lockstep bank model: the k-th shared access of each lane in a region
    /// is assumed co-issued across the warp (exact for divergence-free
    /// kernels, the substrate's contract).  Per lane, the word index of each
    /// shared access this region, capped to bound memory.
    static constexpr std::size_t kMaxBankSeq = 16384;
    std::vector<std::vector<std::uint32_t>> lane_words_;

    std::vector<Finding> findings_;
    std::size_t suppressed_ = 0;
    std::uint64_t tracked_ = 0;
    std::uint64_t conflict_cycles_ = 0;
    unsigned worst_degree_ = 1;
};

}  // namespace simt::sanitize
