#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>

namespace simt::sanitize {

/// Which checks the sanitizer runs (the compute-sanitizer tool analog:
/// racecheck / memcheck / initcheck / a bank-conflict reporter).  The
/// default-constructed value has every check off: that is the zero-overhead
/// production path, and kernels launched with it behave exactly as if the
/// sanitizer did not exist (tracked accessors degrade to raw indexing and
/// KernelStats are bit-identical).
struct SanitizeOptions {
    /// Intra-region data races: two lanes touching the same word between
    /// barriers with at least one non-atomic write (racecheck).
    bool racecheck = false;
    /// Out-of-bounds accesses beyond a tracked view's extent (memcheck).
    bool memcheck = false;
    /// Reads of shared-arena words never written since the block started —
    /// the __shared__ contents left behind by configure()/begin_block()
    /// slot reuse are unspecified, exactly like real hardware (initcheck).
    bool initcheck = false;
    /// Shared-memory bank-conflict accounting (32 banks x 4 B), reported
    /// per kernel; severe serialization also raises a finding.
    bool bankcheck = false;

    /// Throw SanitizeError from Device::launch when a launch produced
    /// findings (CI gate mode).  Findings are recorded first either way.
    bool strict = false;

    /// Per-launch finding cap; further findings are counted as suppressed.
    std::size_t max_findings = 64;

    /// Any check enabled?  When false, launches pay zero instrumentation.
    [[nodiscard]] bool any() const { return racecheck || memcheck || initcheck || bankcheck; }

    /// Every check on (what tools/gas_check and the CI gate run).
    [[nodiscard]] static SanitizeOptions all() {
        SanitizeOptions o;
        o.racecheck = o.memcheck = o.initcheck = o.bankcheck = true;
        return o;
    }

    /// Reads GAS_SANITIZE_RUNTIME: unset/"" -> all off; "1"/"report"/"all"
    /// -> every check; "strict" -> every check plus strict launches.  Lets
    /// ctest rerun whole suites under the sanitizer without code changes.
    [[nodiscard]] static SanitizeOptions from_env() {
        const char* v = std::getenv("GAS_SANITIZE_RUNTIME");
        if (v == nullptr || *v == '\0') return {};
        SanitizeOptions o = all();
        o.strict = std::strcmp(v, "strict") == 0;
        return o;
    }
};

}  // namespace simt::sanitize
