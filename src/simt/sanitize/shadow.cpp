#include "simt/sanitize/shadow.hpp"

#include <algorithm>
#include <sstream>

namespace simt::sanitize {

void SlotShadow::configure(const SanitizeOptions& opts, std::size_t shared_capacity) {
    opts_ = opts;
    const std::size_t words = (shared_capacity + 3) / 4;
    if (shared_.size() < words) shared_.resize(words);
}

void SlotShadow::begin_launch(const std::string& kernel, unsigned block_dim) {
    kernel_ = kernel;
    block_dim_ = block_dim;
    if (opts_.bankcheck) {
        lane_words_.resize(block_dim_);
    } else {
        lane_words_.clear();
    }
}

void SlotShadow::begin_block(unsigned block_idx) {
    block_idx_ = block_idx;
    region_ = 0;
    lane_ = 0;
    std::fill(shared_.begin(), shared_.end(), Word{});
    global_.clear();
    for (auto& v : lane_words_) v.clear();
    findings_.clear();
    suppressed_ = 0;
    tracked_ = 0;
    conflict_cycles_ = 0;
    worst_degree_ = 1;
}

void SlotShadow::begin_region() {
    close_region();
    ++region_;
    for (auto& v : lane_words_) v.clear();
}

void SlotShadow::end_block() { close_region(); }

void SlotShadow::add_finding(Finding f) {
    if (findings_.size() < opts_.max_findings) {
        findings_.push_back(std::move(f));
    } else {
        ++suppressed_;
    }
}

void SlotShadow::touch(Word& w, MemSpace space, std::size_t offset, bool write,
                       bool atomic, bool init_checked) {
    const bool same_region = w.region == region_ && region_ != 0;
    if (!same_region) {
        w.region = region_;
        w.lane = lane_;
        w.flags &= static_cast<std::uint8_t>(~kRegionBits);
    }

    if (init_checked && opts_.initcheck && !write && !atomic && !(w.flags & kInit) &&
        !(w.flags & kUninitSeen)) {
        w.flags |= kUninitSeen;
        Finding f;
        f.kind = FindingKind::UninitRead;
        f.space = space;
        f.kernel = kernel_;
        f.block = block_idx_;
        f.region = region_;
        f.lane = lane_;
        f.other_lane = lane_;
        f.offset = offset;
        f.write = false;
        f.detail = "word never written since the block began (pooled-slot arena "
                   "contents are unspecified)";
        add_finding(std::move(f));
    }

    const bool cross_lane = same_region && (w.lane != lane_ || (w.flags & kMultiLane));
    if (same_region && w.lane != lane_) w.flags |= kMultiLane;
    if (opts_.racecheck && cross_lane && !(w.flags & kRaceSeen)) {
        // Hazard rules between barriers: a plain write races with anything;
        // a plain read races with a prior write or atomic; atomics race only
        // with plain accesses (hardware serializes atomic-vs-atomic).
        bool hazard;
        if (atomic) {
            hazard = (w.flags & (kPlainWrite | kPlainRead)) != 0;
        } else if (write) {
            hazard = true;
        } else {
            hazard = (w.flags & (kPlainWrite | kAtomicAcc)) != 0;
        }
        if (hazard) {
            w.flags |= kRaceSeen;
            Finding f;
            f.kind = FindingKind::Race;
            f.space = space;
            f.kernel = kernel_;
            f.block = block_idx_;
            f.region = region_;
            f.lane = lane_;
            f.other_lane = w.lane;
            f.offset = offset;
            f.write = write || atomic;
            std::ostringstream os;
            os << (atomic ? "atomic" : write ? "write" : "read") << " by lane " << lane_
               << " overlaps lane " << w.lane << " in the same thread region (no "
               << "barrier between them)";
            f.detail = os.str();
            add_finding(std::move(f));
        }
    }

    if (atomic) {
        w.flags |= kAtomicAcc;
    } else if (write) {
        w.flags |= kPlainWrite;
    } else {
        w.flags |= kPlainRead;
    }
    if (write || atomic) w.flags |= kInit;
}

void SlotShadow::record_shared(std::size_t byte_off, std::size_t bytes, bool write,
                               bool atomic) {
    ++tracked_;
    const std::size_t first = byte_off / 4;
    const std::size_t last = (byte_off + (bytes > 0 ? bytes - 1 : 0)) / 4;
    for (std::size_t wi = first; wi <= last && wi < shared_.size(); ++wi) {
        touch(shared_[wi], MemSpace::Shared, byte_off, write, atomic,
              /*init_checked=*/true);
    }
    if (opts_.bankcheck && lane_ < lane_words_.size() &&
        lane_words_[lane_].size() < kMaxBankSeq && first < shared_.size()) {
        lane_words_[lane_].push_back(static_cast<std::uint32_t>(first));
    }
}

void SlotShadow::record_global(const void* addr, std::size_t bytes, bool write,
                               bool atomic) {
    ++tracked_;
    const auto base = reinterpret_cast<std::uintptr_t>(addr);
    const std::uintptr_t first = base >> 2;
    const std::uintptr_t last = (base + (bytes > 0 ? bytes - 1 : 0)) >> 2;
    for (std::uintptr_t wi = first; wi <= last; ++wi) {
        // Offsets for global findings are reported relative to the tracked
        // view by TrackedSpan; here the word's low address bits suffice.
        touch(global_[wi], MemSpace::Global, (wi - first) * 4, write, atomic,
              /*init_checked=*/false);
    }
}

void SlotShadow::record_oob(MemSpace space, std::size_t byte_off, std::size_t view_bytes,
                            bool write) {
    ++tracked_;
    if (!opts_.memcheck) return;
    Finding f;
    f.kind = FindingKind::OutOfBounds;
    f.space = space;
    f.kernel = kernel_;
    f.block = block_idx_;
    f.region = region_;
    f.lane = lane_;
    f.other_lane = lane_;
    f.offset = byte_off;
    f.write = write;
    std::ostringstream os;
    os << (write ? "write" : "read") << " at byte " << byte_off << " beyond a "
       << view_bytes << "-byte " << to_string(space)
       << " view; the access was suppressed";
    f.detail = os.str();
    add_finding(std::move(f));
}

void SlotShadow::close_region() {
    if (!opts_.bankcheck || lane_words_.empty() || region_ == 0) return;
    const auto lanes = static_cast<unsigned>(lane_words_.size());
    unsigned region_worst = 1;

    for (unsigned base = 0; base < lanes; base += kWarpSize) {
        const unsigned wend = std::min(base + kWarpSize, lanes);
        std::size_t max_len = 0;
        for (unsigned l = base; l < wend; ++l) {
            max_len = std::max(max_len, lane_words_[l].size());
        }
        for (std::size_t k = 0; k < max_len; ++k) {
            // The k-th shared access of every lane in the warp co-issues
            // (lockstep model).  Gather the touched words.
            std::uint32_t words[kWarpSize];
            unsigned cnt = 0;
            for (unsigned l = base; l < wend; ++l) {
                if (k < lane_words_[l].size()) words[cnt++] = lane_words_[l][k];
            }
            if (cnt < 2) continue;
            unsigned bank_entries[kBanks] = {};
            bool clash = false;
            for (unsigned i = 0; i < cnt; ++i) {
                clash |= ++bank_entries[words[i] % kBanks] > 1;
            }
            if (!clash) continue;  // conflict-free issue (the common case)
            // Distinct words per bank: same-word lanes broadcast/multicast
            // in one transaction and do not conflict.
            unsigned degree = 1;
            for (unsigned i = 0; i < cnt; ++i) {
                if (bank_entries[words[i] % kBanks] < 2) continue;
                unsigned distinct = 1;
                bool first_of_word = true;
                for (unsigned j = 0; j < i; ++j) {
                    if (words[j] == words[i]) { first_of_word = false; break; }
                }
                if (!first_of_word) continue;
                for (unsigned j = i + 1; j < cnt; ++j) {
                    if (words[j] % kBanks == words[i] % kBanks && words[j] != words[i]) {
                        bool seen = false;
                        for (unsigned m = 0; m < j; ++m) {
                            if (words[m] == words[j]) { seen = true; break; }
                        }
                        if (!seen) ++distinct;
                    }
                }
                degree = std::max(degree, distinct);
            }
            if (degree > 1) {
                conflict_cycles_ += degree - 1;
                region_worst = std::max(region_worst, degree);
            }
        }
    }

    worst_degree_ = std::max(worst_degree_, region_worst);
    if (region_worst >= kSevereBankDegree) {
        Finding f;
        f.kind = FindingKind::BankConflict;
        f.space = MemSpace::Shared;
        f.kernel = kernel_;
        f.block = block_idx_;
        f.region = region_;
        f.lane = 0;
        f.other_lane = 0;
        f.offset = 0;
        f.write = false;
        std::ostringstream os;
        os << "shared-memory accesses serialize up to " << region_worst
           << "-way on one bank (32 banks x 4 B) in this region";
        f.detail = os.str();
        add_finding(std::move(f));
    }
}

SlotShadow::BlockResult SlotShadow::take_block_result() {
    BlockResult r;
    r.findings = std::move(findings_);
    r.suppressed = suppressed_;
    r.tracked_accesses = tracked_;
    r.bank_conflict_cycles = conflict_cycles_;
    r.worst_bank_degree = worst_degree_;
    findings_ = {};
    suppressed_ = 0;
    tracked_ = 0;
    conflict_cycles_ = 0;
    worst_degree_ = 1;
    return r;
}

}  // namespace simt::sanitize
