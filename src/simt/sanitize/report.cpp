#include "simt/sanitize/finding.hpp"

#include <sstream>

namespace simt::sanitize {

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::string describe(const Finding& f) {
    std::ostringstream os;
    os << to_string(f.kind) << " [" << to_string(f.space) << "] " << f.kernel << " block "
       << f.block << " region " << f.region;
    if (f.kind == FindingKind::Race) {
        os << " lanes " << f.lane << "/" << f.other_lane;
    } else if (f.kind != FindingKind::BankConflict) {
        os << " lane " << f.lane;
    }
    if (f.kind != FindingKind::BankConflict) os << " +0x" << std::hex << f.offset << std::dec;
    os << ": " << f.detail;
    return os.str();
}

std::string to_json(const SanitizeReport& report) {
    std::ostringstream os;
    os << "{\"tool\":\"simt::sanitize\",\"clean\":" << (report.clean() ? "true" : "false");
    os << ",\"counts\":{";
    const FindingKind kinds[] = {FindingKind::Race, FindingKind::OutOfBounds,
                                 FindingKind::UninitRead, FindingKind::BankConflict};
    for (std::size_t i = 0; i < 4; ++i) {
        os << (i ? "," : "") << "\"" << to_string(kinds[i])
           << "\":" << report.count(kinds[i]);
    }
    os << "},\"suppressed\":" << report.suppressed;
    os << ",\"findings\":[";
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
        const Finding& f = report.findings[i];
        os << (i ? "," : "") << "{\"kind\":\"" << to_string(f.kind) << "\",\"space\":\""
           << to_string(f.space) << "\",\"kernel\":\"" << json_escape(f.kernel)
           << "\",\"block\":" << f.block << ",\"region\":" << f.region
           << ",\"lane\":" << f.lane << ",\"other_lane\":" << f.other_lane
           << ",\"offset\":" << f.offset << ",\"write\":" << (f.write ? "true" : "false")
           << ",\"detail\":\"" << json_escape(f.detail) << "\"}";
    }
    os << "],\"launches\":[";
    for (std::size_t i = 0; i < report.launches.size(); ++i) {
        const LaunchSanitizeStats& l = report.launches[i];
        os << (i ? "," : "") << "{\"kernel\":\"" << json_escape(l.kernel)
           << "\",\"grid\":" << l.grid_dim << ",\"block\":" << l.block_dim
           << ",\"tracked_accesses\":" << l.tracked_accesses
           << ",\"bank_conflict_cycles\":" << l.bank_conflict_cycles
           << ",\"worst_bank_degree\":" << l.worst_bank_degree
           << ",\"findings\":" << l.findings << "}";
    }
    os << "]}";
    return os.str();
}

}  // namespace simt::sanitize
