#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "simt/kernel.hpp"

namespace simt {

/// Persistent host worker pool backing Device::launch.
///
/// Spawning and joining a std::thread per launch costs tens of microseconds —
/// often more than simulating a small grid — and one GPU-ArraySort run issues
/// dozens of launches (the STA baseline issues 3 kernels x 8 passes per sort).
/// The pool parks workers on a condition variable between launches and binds
/// each worker to a stable execution slot whose BlockCtx (including its
/// shared-memory arena) is reused across launches, so a steady-state launch
/// costs one wakeup instead of thread creation plus a 48 KB allocation.
///
/// Determinism contract: the pool only decides *which worker* runs which
/// block; everything observable (per-block cost records, aggregation order,
/// slot numbering) is keyed by block id / worker id in Device::launch exactly
/// as it was with per-launch threads, so KernelStats are bit-identical for
/// any worker count.
class ThreadPool {
  public:
    ThreadPool() = default;
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;
    ~ThreadPool();

    /// Runs task(worker) for worker = 0..workers-1 and blocks until every
    /// call returns.  Worker 0 runs on the calling thread; the rest run on
    /// pool threads, spawned lazily on first use and kept for later runs.
    /// The first exception thrown by any worker (caller included) is
    /// rethrown here after all workers have stopped — identical semantics to
    /// the old spawn-and-join pool.  Not reentrant: one run at a time
    /// (Device::launch, the only caller, is itself not thread-safe).
    void run(unsigned workers, const std::function<void(unsigned)>& task);

    /// The BlockCtx bound to execution slot `worker`.  During a run, slot w
    /// is touched only by worker w, so no locking is needed; slots are
    /// created up front by reserve_slots()/run() on the calling thread.
    [[nodiscard]] BlockCtx& block_ctx(unsigned worker) { return *slots_[worker]; }

    /// Ensures ctx slots [0, workers) exist.  Must not overlap a run().
    void reserve_slots(unsigned workers);

    /// Pool threads currently alive (excludes the caller; grows on demand).
    [[nodiscard]] unsigned threads() const { return static_cast<unsigned>(threads_.size()); }

  private:
    void worker_main(unsigned index);
    void ensure_threads(unsigned count);

    std::vector<std::thread> threads_;
    std::vector<std::unique_ptr<BlockCtx>> slots_;

    std::mutex mutex_;
    std::condition_variable work_cv_;  ///< workers wait here for a new job
    std::condition_variable done_cv_;  ///< run() waits here for completion
    const std::function<void(unsigned)>* task_ = nullptr;
    std::uint64_t generation_ = 0;  ///< bumped once per run(); wakes workers
    unsigned participants_ = 0;     ///< pool threads drafted into the current run
    unsigned remaining_ = 0;        ///< drafted pool threads still working
    std::exception_ptr failure_;
    bool stopping_ = false;
};

}  // namespace simt
