#pragma once

#include <iosfwd>
#include <string>

#include "simt/device.hpp"

namespace simt {

/// Human-readable device description (name, SMs, memory, model constants).
[[nodiscard]] std::string describe_device(const DeviceProperties& props);

/// Pretty-prints the device's kernel log as a table: per kernel the launch
/// geometry, modeled compute vs. memory time, DRAM traffic and the
/// bottleneck classification (compute- or bandwidth-bound).  The tail row
/// totals the log.  Useful for understanding where a sort's modeled time
/// goes (the per-phase numbers the paper's section 6 reasons about).
void print_kernel_log(std::ostream& os, const Device& device);

/// Aggregated per-kernel-name summary (the same kernel launched many times
/// is folded into one row with a launch count).
void print_kernel_summary(std::ostream& os, const Device& device);

/// Pretty-prints the device's sanitize report (simt::sanitize) next to the
/// kernel tables: per kernel the launch count, tracked accesses, modeled
/// shared-memory bank-conflict cycles and worst serialization degree, then
/// every finding (race / out-of-bounds / uninit-read / bank-conflict) with
/// its kernel, block, region, lane and offset.
void print_sanitize_report(std::ostream& os, const Device& device);

}  // namespace simt
