#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "simt/counters.hpp"
#include "simt/device_properties.hpp"

namespace simt {

/// Cost summary for a single block, derived from its lane counters.
struct BlockCost {
    double cycles = 0.0;         ///< serialized warp-cycles the block occupies an SM for
    double traffic_bytes = 0.0;  ///< DRAM traffic the block generates
};

/// Timing + traffic summary of one kernel launch.
struct KernelStats {
    std::string name;
    unsigned grid_dim = 0;
    unsigned block_dim = 0;
    std::size_t shared_bytes_per_block = 0;

    LaneCounters totals;          ///< summed over every lane of every block
    double traffic_bytes = 0.0;   ///< modeled DRAM traffic
    double compute_ms = 0.0;      ///< modeled makespan of block compute over SMs
    double memory_ms = 0.0;       ///< modeled DRAM traffic / bandwidth
    double modeled_ms = 0.0;      ///< max(compute, memory) * derate + overhead
    double wall_ms = 0.0;         ///< host wall-clock of the functional simulation
};

/// Roofline-style analytic model of kernel time on the simulated device.
///
/// Per block: each warp's cycle count is `cpi * max_lane(ops) +
/// shared_access_cycles * max_lane(shared)`; warps beyond the SM's
/// concurrent-warp capacity serialize.  Coalesced traffic counts its exact
/// bytes; each scattered access costs one `uncoalesced_segment_bytes`
/// segment.  Device time is `max(compute makespan over SM block slots,
/// total traffic / bandwidth)`, scaled by the frozen `efficiency_derate`
/// calibration (see DeviceProperties).
class CostModel {
  public:
    explicit CostModel(const DeviceProperties& props) : props_(props) {}

    /// Lane counters of one block -> that block's cost.
    [[nodiscard]] BlockCost block_cost(std::span<const LaneCounters> lanes) const;

    /// How many blocks of `block_threads` threads using `shared_bytes` of
    /// shared memory can be resident on one SM at a time.
    [[nodiscard]] unsigned blocks_per_sm(unsigned block_threads, std::size_t shared_bytes) const;

    /// Schedules per-block cycle counts over the device's block slots and
    /// fills the timing fields of `stats` (everything except wall_ms).
    void finalize(KernelStats& stats, std::span<const double> block_cycles,
                  double total_traffic_bytes) const;

  private:
    DeviceProperties props_;
};

}  // namespace simt
