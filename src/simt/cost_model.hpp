#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "simt/counters.hpp"
#include "simt/device_properties.hpp"

namespace simt {

/// Cost summary for a single block, derived from its lane counters.
struct BlockCost {
    double cycles = 0.0;         ///< serialized warp-cycles the block occupies an SM for
    double traffic_bytes = 0.0;  ///< DRAM traffic the block generates
    /// Divergence/imbalance inputs: per-warp max-lane cycles summed over
    /// the block's warps (what lockstep execution charges) and the same sum
    /// using each warp's mean-lane cycles (what perfectly balanced lanes
    /// would have cost).  Their launch-wide ratio is KernelStats::imbalance.
    double warp_max_cycles = 0.0;
    double warp_mean_cycles = 0.0;
};

/// Timing + traffic summary of one kernel launch.
struct KernelStats {
    std::string name;
    unsigned grid_dim = 0;
    unsigned block_dim = 0;
    std::size_t shared_bytes_per_block = 0;

    LaneCounters totals;          ///< summed over every lane of every block
    double traffic_bytes = 0.0;   ///< modeled DRAM traffic
    double compute_ms = 0.0;      ///< modeled makespan of block compute over SMs
    double memory_ms = 0.0;       ///< modeled DRAM traffic / bandwidth
    double modeled_ms = 0.0;      ///< max(compute, memory) * derate + overhead
    double wall_ms = 0.0;         ///< host wall-clock of the functional simulation

    // Divergence/imbalance metric: lockstep warps pay their slowest lane,
    // so `imbalance` = (sum over warps of max-lane cycles) / (same sum with
    // mean-lane cycles).  1.0 = perfectly balanced lanes; a skewed bucket
    // serializing one lane of each warp pushes it toward the warp width.
    // Aggregated in block order, so it is deterministic for any worker
    // count like every other field.
    double warp_max_cycles = 0.0;   ///< Σ_warps max-lane cycles (all blocks)
    double warp_mean_cycles = 0.0;  ///< Σ_warps mean-lane cycles (all blocks)
    double imbalance = 1.0;         ///< warp_max_cycles / warp_mean_cycles
};

/// Roofline-style analytic model of kernel time on the simulated device.
///
/// Per block: each warp's cycle count is `cpi * max_lane(ops) +
/// shared_access_cycles * max_lane(shared)`; warps beyond the SM's
/// concurrent-warp capacity serialize.  Coalesced traffic counts its exact
/// bytes; each scattered access costs one `uncoalesced_segment_bytes`
/// segment.  Device time is `max(compute makespan over SM block slots,
/// total traffic / bandwidth)`, scaled by the frozen `efficiency_derate`
/// calibration (see DeviceProperties).
class CostModel {
  public:
    explicit CostModel(const DeviceProperties& props) : props_(props) {}

    /// Lane counters of one block -> that block's cost.
    [[nodiscard]] BlockCost block_cost(std::span<const LaneCounters> lanes) const;

    /// How many blocks of `block_threads` threads using `shared_bytes` of
    /// shared memory can be resident on one SM at a time.
    [[nodiscard]] unsigned blocks_per_sm(unsigned block_threads, std::size_t shared_bytes) const;

    /// Schedules per-block cycle counts over the device's block slots and
    /// fills the timing fields of `stats` (everything except wall_ms).
    void finalize(KernelStats& stats, std::span<const double> block_cycles,
                  double total_traffic_bytes) const;

  private:
    DeviceProperties props_;
};

}  // namespace simt
