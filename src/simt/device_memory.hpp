#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>

#include "simt/error.hpp"

namespace simt {

namespace faults {
class FaultInjector;
}

/// First-fit allocator over the simulated device's global memory.
///
/// Two backing modes:
///  * `Backed`  — offsets resolve into a host arena; kernels can actually
///    read and write device data.  Used by every functional run.  The arena
///    is reserved but not touched up front, so a Backed device with the full
///    11.5 GB capacity only commits pages the workload uses.
///  * `Virtual` — pure accounting, no arena.  Used by the Table 1 capacity
///    experiments, which only need allocate/fail arithmetic at sizes that may
///    exceed host RAM.  Dereferencing a Virtual allocation throws.
///
/// Alignment follows cudaMalloc's 256-byte guarantee.
class DeviceMemory {
  public:
    enum class Mode { Backed, Virtual };

    static constexpr std::size_t kAlignment = 256;

    DeviceMemory(std::size_t capacity_bytes, Mode mode);

    DeviceMemory(const DeviceMemory&) = delete;
    DeviceMemory& operator=(const DeviceMemory&) = delete;

    /// Allocates `bytes` (rounded up to the 256 B alignment).  Returns the
    /// device offset.  Throws DeviceBadAlloc when no free range fits.
    std::size_t allocate(std::size_t bytes);

    /// Releases an allocation previously returned by allocate().
    void deallocate(std::size_t offset) noexcept;

    /// Host pointer for a device offset (Backed mode only).
    [[nodiscard]] std::byte* translate(std::size_t offset);
    [[nodiscard]] const std::byte* translate(std::size_t offset) const;

    [[nodiscard]] Mode mode() const { return mode_; }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] std::size_t bytes_in_use() const { return in_use_; }
    [[nodiscard]] std::size_t peak_bytes_in_use() const { return peak_; }
    [[nodiscard]] std::size_t allocation_count() const { return live_.size(); }
    [[nodiscard]] std::size_t bytes_free() const { return capacity_ - in_use_; }

    /// Largest single allocation that could currently succeed (contiguity!).
    [[nodiscard]] std::size_t largest_free_range() const;

    /// offset/size of the largest live allocation ({0,0} when none) and of
    /// the i-th live allocation in offset order.  Used by the fault injector
    /// to pick corruption targets deterministically.
    [[nodiscard]] std::pair<std::size_t, std::size_t> largest_live_allocation() const;
    [[nodiscard]] std::pair<std::size_t, std::size_t> live_allocation(std::size_t index) const;

    /// Fault-injection hook (simt::faults).  Null (the default) costs one
    /// pointer compare per allocate(); non-null lets the injector refuse
    /// allocations per its plan.
    void set_fault_injector(faults::FaultInjector* injector) { faults_ = injector; }

    /// Drops every live allocation (used between capacity-probe iterations).
    void reset();

  private:
    Mode mode_;
    std::size_t capacity_;
    std::size_t in_use_ = 0;
    std::size_t peak_ = 0;
    std::map<std::size_t, std::size_t> free_;  ///< offset -> size, coalesced.
    std::map<std::size_t, std::size_t> live_;  ///< offset -> size.
    std::unique_ptr<std::byte[]> arena_;       ///< null in Virtual mode.
    faults::FaultInjector* faults_ = nullptr;  ///< non-owning; see Device.
};

}  // namespace simt
