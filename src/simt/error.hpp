#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace simt {

/// Base class for all simulated-device errors.
class DeviceError : public std::runtime_error {
  public:
    using std::runtime_error::runtime_error;
};

/// Thrown when a global-memory allocation does not fit on the device.
/// Mirrors cudaErrorMemoryAllocation; the capacity experiments (Table 1)
/// probe for this error.
class DeviceBadAlloc : public DeviceError {
  public:
    DeviceBadAlloc(std::size_t requested, std::size_t in_use, std::size_t capacity)
        : DeviceError("device out of memory: requested " + std::to_string(requested) +
                      " B with " + std::to_string(in_use) + " B in use of " +
                      std::to_string(capacity) + " B"),
          requested_(requested),
          in_use_(in_use),
          capacity_(capacity) {}

    [[nodiscard]] std::size_t requested() const { return requested_; }
    [[nodiscard]] std::size_t in_use() const { return in_use_; }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

  private:
    std::size_t requested_;
    std::size_t in_use_;
    std::size_t capacity_;
};

/// Thrown when a block requests more shared memory than the device offers.
class SharedMemoryOverflow : public DeviceError {
  public:
    SharedMemoryOverflow(std::size_t requested, std::size_t capacity)
        : DeviceError("shared memory overflow: block requested " + std::to_string(requested) +
                      " B of " + std::to_string(capacity) + " B") {}
};

/// Thrown on malformed launch configurations (zero dims, too many threads...).
class LaunchError : public DeviceError {
  public:
    using DeviceError::DeviceError;
};

/// Thrown by Device::launch when an injected fault (simt::faults) refuses
/// the launch.  The analog of a transient cudaErrorLaunchFailure: the
/// kernel never ran, device memory is unchanged, and retrying is sound.
class LaunchFault : public DeviceError {
  public:
    LaunchFault(const std::string& kernel, std::uint64_t ordinal)
        : DeviceError("injected launch fault: kernel '" + kernel + "' (launch #" +
                      std::to_string(ordinal) + ") refused"),
          ordinal_(ordinal) {}

    [[nodiscard]] std::uint64_t ordinal() const { return ordinal_; }

  private:
    std::uint64_t ordinal_;
};

/// Thrown by Device::launch when an injected hang (simt::faults) is aborted
/// — either by the device's hang handler (a watchdog deciding the launch is
/// stuck) or by the plan's hang_max_ms safety valve.  Like LaunchFault the
/// kernel body never ran and device memory is unchanged, so retrying is
/// sound; unlike LaunchFault, real wall time elapsed while the launch hung.
class StallFault : public DeviceError {
  public:
    StallFault(const std::string& kernel, std::uint64_t ordinal, double hung_ms)
        : DeviceError("injected hang: kernel '" + kernel + "' (launch #" +
                      std::to_string(ordinal) + ") aborted after " +
                      std::to_string(hung_ms) + " ms stalled"),
          ordinal_(ordinal),
          hung_ms_(hung_ms) {}

    [[nodiscard]] std::uint64_t ordinal() const { return ordinal_; }
    [[nodiscard]] double hung_ms() const { return hung_ms_; }

  private:
    std::uint64_t ordinal_;
    double hung_ms_;
};

/// Thrown by Device::launch when an injected corruption fires in detected
/// mode: bits were flipped in global memory and the ECC/transfer machinery
/// noticed.  Device data IS corrupted; recovery means re-staging from the
/// host copy, not retrying in place.
class TransferError : public DeviceError {
  public:
    TransferError(std::size_t offset, unsigned bits)
        : DeviceError("detected memory corruption: " + std::to_string(bits) +
                      " bit(s) flipped near device offset " + std::to_string(offset)),
          offset_(offset),
          bits_(bits) {}

    [[nodiscard]] std::size_t offset() const { return offset_; }
    [[nodiscard]] unsigned bits() const { return bits_; }

  private:
    std::size_t offset_;
    unsigned bits_;
};

/// Thrown by Device::launch in strict sanitize mode when the launch
/// produced findings (the findings are recorded in the device's sanitize
/// report before the throw).  The CI gate's analog of compute-sanitizer's
/// non-zero exit status.
class SanitizeError : public DeviceError {
  public:
    SanitizeError(const std::string& kernel, std::size_t findings)
        : DeviceError("sanitizer: launch '" + kernel + "' produced " +
                      std::to_string(findings) +
                      " finding(s); see Device::sanitize_report()"),
          findings_(findings) {}

    [[nodiscard]] std::size_t findings() const { return findings_; }

  private:
    std::size_t findings_;
};

}  // namespace simt
