#pragma once

#include <cstddef>
#include <functional>

#include "simt/cost_model.hpp"
#include "simt/counters.hpp"
#include "simt/kernel.hpp"
#include "simt/sanitize/shadow.hpp"

namespace simt::detail {

/// Per-block cost record, indexed by block id so aggregation order (and
/// therefore the modeled time) is identical for any worker count.  The
/// sanitizer's per-block result rides along for the same reason: findings
/// are merged in block order no matter which worker ran the block.
///
/// Shared by the two kernel executors — `Device::launch` (one kernel per
/// host round-trip) and `Device::submit` (a whole `Graph` per round-trip) —
/// so both paths produce bit-identical per-launch records by construction.
struct BlockRecord {
    double cycles = 0.0;
    double traffic = 0.0;
    double warp_max_cycles = 0.0;
    double warp_mean_cycles = 0.0;
    LaneCounters totals;
    std::size_t shared_high_water = 0;
    sanitize::SlotShadow::BlockResult san;
};

inline void run_block(const std::function<void(BlockCtx&)>& body, BlockCtx& ctx,
                      const CostModel& model, unsigned block, BlockRecord& rec) {
    ctx.begin_block(block);
    body(ctx);
    const BlockCost cost = model.block_cost(ctx.lanes());
    rec.cycles = cost.cycles;
    rec.traffic = cost.traffic_bytes;
    rec.warp_max_cycles = cost.warp_max_cycles;
    rec.warp_mean_cycles = cost.warp_mean_cycles;
    for (const LaneCounters& lane : ctx.lanes()) rec.totals += lane;
    rec.shared_high_water = ctx.shared_high_water();
    if (sanitize::SlotShadow* shadow = ctx.sanitizer()) {
        shadow->end_block();
        rec.san = shadow->take_block_result();
    }
}

}  // namespace simt::detail
