#include "simt/cost_model.hpp"

#include <algorithm>
#include <queue>

namespace simt {

BlockCost CostModel::block_cost(std::span<const LaneCounters> lanes) const {
    BlockCost cost;
    const std::size_t warp = props_.warp_size;
    double warp_cycles_sum = 0.0;
    std::size_t num_warps = 0;

    for (std::size_t base = 0; base < lanes.size(); base += warp) {
        const std::size_t end = std::min(base + warp, lanes.size());
        std::uint64_t max_ops = 0;
        std::uint64_t max_shared = 0;
        double lane_cycles_sum = 0.0;
        for (std::size_t i = base; i < end; ++i) {
            max_ops = std::max(max_ops, lanes[i].ops);
            max_shared = std::max(max_shared, lanes[i].shared_accesses);
            lane_cycles_sum +=
                props_.cpi * static_cast<double>(lanes[i].ops) +
                props_.shared_access_cycles * static_cast<double>(lanes[i].shared_accesses);
            cost.traffic_bytes += static_cast<double>(lanes[i].coalesced_bytes) +
                                  static_cast<double>(lanes[i].random_accesses) *
                                      props_.uncoalesced_segment_bytes;
        }
        warp_cycles_sum += props_.cpi * static_cast<double>(max_ops) +
                           props_.shared_access_cycles * static_cast<double>(max_shared);
        cost.warp_mean_cycles += lane_cycles_sum / static_cast<double>(end - base);
        ++num_warps;
    }
    cost.warp_max_cycles = warp_cycles_sum;

    // Warps share the SM's issue slots; beyond the concurrent capacity they
    // serialize.  (A block with a single warp simply takes its warp time.)
    const double parallel_warps = std::min<double>(
        static_cast<double>(std::max<std::size_t>(num_warps, 1)),
        static_cast<double>(props_.concurrent_warps_per_sm()));
    cost.cycles = warp_cycles_sum / parallel_warps;
    return cost;
}

unsigned CostModel::blocks_per_sm(unsigned block_threads, std::size_t shared_bytes) const {
    unsigned by_threads = props_.max_threads_per_sm / std::max(block_threads, 1u);
    unsigned by_shared = shared_bytes == 0
                             ? props_.max_blocks_per_sm
                             : static_cast<unsigned>(props_.shared_memory_per_sm / shared_bytes);
    unsigned conc = std::min({props_.max_blocks_per_sm, by_threads, by_shared});
    return std::max(conc, 1u);
}

void CostModel::finalize(KernelStats& stats, std::span<const double> block_cycles,
                         double total_traffic_bytes) const {
    const unsigned conc = blocks_per_sm(stats.block_dim, stats.shared_bytes_per_block);
    const std::size_t slots = static_cast<std::size_t>(props_.sm_count) * conc;

    // Greedy list scheduling of blocks onto slots (min-heap of slot loads).
    // Blocks of one kernel are near-identical, so this tracks the real
    // round-robin hardware scheduler closely.
    double makespan_cycles = 0.0;
    if (!block_cycles.empty()) {
        std::priority_queue<double, std::vector<double>, std::greater<>> loads;
        for (std::size_t s = 0; s < std::min(slots, block_cycles.size()); ++s) loads.push(0.0);
        for (double c : block_cycles) {
            double least = loads.top();
            loads.pop();
            loads.push(least + c);
        }
        while (!loads.empty()) {
            makespan_cycles = std::max(makespan_cycles, loads.top());
            loads.pop();
        }
    }

    const double clock_hz = props_.core_clock_ghz * 1e9;
    stats.compute_ms = makespan_cycles / clock_hz * 1e3;
    stats.memory_ms = total_traffic_bytes / (props_.mem_bandwidth_gbps * 1e9) * 1e3;
    stats.traffic_bytes = total_traffic_bytes;
    stats.modeled_ms = std::max(stats.compute_ms, stats.memory_ms) * props_.efficiency_derate +
                       props_.kernel_launch_overhead_ms;
}

}  // namespace simt
