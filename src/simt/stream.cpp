#include "simt/stream.hpp"

#include <algorithm>
#include <stdexcept>

namespace simt {

void Timeline::enqueue(std::size_t stream, double& engine_ready, double& engine_busy,
                       double ms) {
    if (stream >= stream_ready_.size()) {
        throw std::out_of_range("Timeline: stream index out of range");
    }
    const double start = std::max(stream_ready_[stream], engine_ready);
    const double end = start + ms;
    stream_ready_[stream] = end;
    engine_ready = end;
    engine_busy += ms;
    serialized_ += ms;
}

double Timeline::elapsed_ms() const {
    double e = std::max({h2d_ready_, d2h_ready_, compute_ready_});
    for (double s : stream_ready_) e = std::max(e, s);
    return e;
}

}  // namespace simt
