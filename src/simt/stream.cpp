#include "simt/stream.hpp"

#include <algorithm>
#include <stdexcept>

#include "simt/device.hpp"

namespace simt {

void Timeline::enqueue(std::size_t stream, double& engine_ready, double& engine_busy,
                       double ms, const char* engine) {
    if (stream >= stream_ready_.size()) {
        throw std::out_of_range("Timeline: stream index out of range");
    }
    if (fault_device_ != nullptr) {
        if (faults::FaultInjector* inj = fault_device_->fault_injector()) {
            ms += inj->on_engine_op(engine);
        }
    }
    const double start = std::max(stream_ready_[stream], engine_ready);
    const double end = start + ms;
    stream_ready_[stream] = end;
    engine_ready = end;
    engine_busy += ms;
    serialized_ += ms;
}

double Timeline::elapsed_ms() const {
    double e = std::max({h2d_ready_, d2h_ready_, compute_ready_});
    for (double s : stream_ready_) e = std::max(e, s);
    return e;
}

}  // namespace simt
