#include "simt/report.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

namespace simt {

namespace {

std::string human_bytes(double bytes) {
    const char* units[] = {"B", "KB", "MB", "GB"};
    int u = 0;
    while (bytes >= 1024.0 && u < 3) {
        bytes /= 1024.0;
        ++u;
    }
    std::ostringstream os;
    os << std::fixed << std::setprecision(bytes < 10 ? 2 : 1) << bytes << " " << units[u];
    return os.str();
}

}  // namespace

std::string describe_device(const DeviceProperties& props) {
    std::ostringstream os;
    os << props.name << ": " << props.sm_count << " SMs x " << props.cores_per_sm
       << " cores @ " << props.core_clock_ghz << " GHz, "
       << human_bytes(static_cast<double>(props.global_memory_bytes)) << " global ("
       << props.mem_bandwidth_gbps << " GB/s), "
       << human_bytes(static_cast<double>(props.shared_memory_per_block))
       << " shared/block, derate " << props.efficiency_derate << "x";
    return os.str();
}

void print_kernel_log(std::ostream& os, const Device& device) {
    os << std::left << std::setw(28) << "kernel" << std::right << std::setw(9) << "grid"
       << std::setw(7) << "block" << std::setw(11) << "compute" << std::setw(11) << "memory"
       << std::setw(11) << "modeled" << std::setw(11) << "traffic" << "  bound\n";
    double total = 0.0;
    for (const KernelStats& k : device.kernel_log()) {
        os << std::left << std::setw(28) << k.name << std::right << std::setw(9) << k.grid_dim
           << std::setw(7) << k.block_dim << std::setw(9) << std::fixed
           << std::setprecision(3) << k.compute_ms << "ms" << std::setw(9) << k.memory_ms
           << "ms" << std::setw(9) << k.modeled_ms << "ms" << std::setw(11)
           << human_bytes(k.traffic_bytes) << "  "
           << (k.compute_ms >= k.memory_ms ? "compute" : "memory") << "\n";
        total += k.modeled_ms;
    }
    os << std::left << std::setw(28) << "TOTAL" << std::right << std::setw(47) << ""
       << std::setw(9) << total << "ms\n";
}

void print_sanitize_report(std::ostream& os, const Device& device) {
    const sanitize::SanitizeReport& rep = device.sanitize_report();
    struct Row {
        std::size_t launches = 0;
        std::uint64_t tracked = 0;
        std::uint64_t conflict_cycles = 0;
        unsigned worst_degree = 1;
        std::size_t findings = 0;
    };
    std::map<std::string, Row> rows;
    for (const sanitize::LaunchSanitizeStats& l : rep.launches) {
        Row& r = rows[l.kernel];
        ++r.launches;
        r.tracked += l.tracked_accesses;
        r.conflict_cycles += l.bank_conflict_cycles;
        r.worst_degree = std::max(r.worst_degree, l.worst_bank_degree);
        r.findings += l.findings;
    }
    os << std::left << std::setw(28) << "kernel" << std::right << std::setw(10)
       << "launches" << std::setw(12) << "tracked" << std::setw(12) << "bank-cyc"
       << std::setw(7) << "worst" << std::setw(10) << "findings\n";
    for (const auto& [name, r] : rows) {
        os << std::left << std::setw(28) << name << std::right << std::setw(10)
           << r.launches << std::setw(12) << r.tracked << std::setw(12)
           << r.conflict_cycles << std::setw(6) << r.worst_degree << "x" << std::setw(9)
           << r.findings << "\n";
    }
    if (rep.clean()) {
        os << "sanitizer: no findings\n";
        return;
    }
    os << "sanitizer: " << rep.findings.size() << " finding(s)";
    if (rep.suppressed > 0) os << " (+" << rep.suppressed << " suppressed)";
    os << "\n";
    for (const sanitize::Finding& f : rep.findings) {
        os << "  " << sanitize::describe(f) << "\n";
    }
}

void print_kernel_summary(std::ostream& os, const Device& device) {
    struct Row {
        std::size_t launches = 0;
        double modeled_ms = 0.0;
        double traffic = 0.0;
    };
    std::map<std::string, Row> rows;
    for (const KernelStats& k : device.kernel_log()) {
        Row& r = rows[k.name];
        ++r.launches;
        r.modeled_ms += k.modeled_ms;
        r.traffic += k.traffic_bytes;
    }
    os << std::left << std::setw(28) << "kernel" << std::right << std::setw(10) << "launches"
       << std::setw(12) << "modeled" << std::setw(12) << "traffic\n";
    for (const auto& [name, r] : rows) {
        os << std::left << std::setw(28) << name << std::right << std::setw(10) << r.launches
           << std::setw(10) << std::fixed << std::setprecision(3) << r.modeled_ms << "ms"
           << std::setw(12) << human_bytes(r.traffic) << "\n";
    }
}

}  // namespace simt
