#include "simt/graph.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <queue>
#include <thread>

#include "simt/device.hpp"
#include "simt/launch_detail.hpp"

namespace simt {

namespace {

/// Scheduler scratch shared between Device::submit and GraphCtx for the
/// duration of one run.  Ready nodes drain in ascending id order so the
/// execution sequence (and therefore the kernel log) is deterministic.
struct ExecState {
    std::priority_queue<Graph::NodeId, std::vector<Graph::NodeId>,
                        std::greater<Graph::NodeId>>
        ready;
    GraphStats stats;
};

ExecState& exec_of(void* p) { return *static_cast<ExecState*>(p); }

}  // namespace

// ---------------------------------------------------------------------------
// Graph construction

void Graph::check_node_id(NodeId id, const char* what) const {
    if (id >= nodes_.size()) {
        throw GraphError(std::string("graph: ") + what + " names unknown node " +
                         std::to_string(id) + " (graph has " +
                         std::to_string(nodes_.size()) + " node(s))");
    }
}

Graph::NodeId Graph::add_node(Node node, std::vector<NodeId> deps, bool dynamic) {
    if (executing_ && !dynamic) {
        throw GraphError("graph: cannot mutate a graph while it is executing; "
                         "host nodes enqueue through their GraphCtx");
    }
    for (const NodeId d : deps) check_node_id(d, "dependency edge");
    const NodeId id = nodes_.size();
    node.deps = deps;
    node.dynamic = dynamic;
    // Dependencies already settled (possible for dynamic nodes) are not
    // counted as unmet; edges only ever point from older nodes to newer
    // ones, so dynamic enqueue cannot create a cycle.
    for (const NodeId d : deps) {
        if (nodes_[d].state == State::Pending) ++node.unmet;
        nodes_[d].succs.push_back(id);
    }
    const std::size_t unmet = node.unmet;
    nodes_.push_back(std::move(node));
    if (!dynamic) {
        static_nodes_ = nodes_.size();
    } else {
        auto& exec = exec_of(exec_state_);
        ++exec.stats.device_enqueued;
        if (unmet == 0) exec.ready.push(id);
    }
    return id;
}

Graph::NodeId Graph::add_kernel(LaunchConfig cfg, KernelBody body,
                                std::vector<NodeId> deps) {
    Node n;
    n.kind = Kind::Kernel;
    n.cfg = std::move(cfg);
    n.body = std::move(body);
    return add_node(std::move(n), std::move(deps), /*dynamic=*/false);
}

Graph::NodeId Graph::add_kernel_if(LaunchConfig cfg, KernelBody body, Predicate pred,
                                   std::vector<NodeId> deps) {
    Node n;
    n.kind = Kind::Kernel;
    n.cfg = std::move(cfg);
    n.body = std::move(body);
    n.pred = std::move(pred);
    return add_node(std::move(n), std::move(deps), /*dynamic=*/false);
}

Graph::NodeId Graph::add_host(std::string name, HostFn fn, std::vector<NodeId> deps) {
    Node n;
    n.kind = Kind::Host;
    n.cfg.name = std::move(name);
    n.host = std::move(fn);
    return add_node(std::move(n), std::move(deps), /*dynamic=*/false);
}

void Graph::add_edge(NodeId from, NodeId to) {
    if (executing_) {
        throw GraphError("graph: cannot add edges while the graph is executing");
    }
    check_node_id(from, "edge source");
    check_node_id(to, "edge target");
    if (from == to) {
        throw GraphError("graph: self-edge on node " + std::to_string(to) + " ('" +
                         nodes_[to].cfg.name + "') would deadlock");
    }
    nodes_[from].succs.push_back(to);
    nodes_[to].deps.push_back(from);
}

void Graph::validate() const {
    // Kahn's algorithm over the static nodes; anything left with unmet
    // dependencies after the drain sits on a cycle.
    std::vector<std::size_t> unmet(nodes_.size(), 0);
    for (const Node& n : nodes_) {
        for (const NodeId s : n.succs) ++unmet[s];
    }
    std::queue<NodeId> ready;
    for (NodeId i = 0; i < nodes_.size(); ++i) {
        if (unmet[i] == 0) ready.push(i);
    }
    std::size_t settled = 0;
    while (!ready.empty()) {
        const NodeId id = ready.front();
        ready.pop();
        ++settled;
        for (const NodeId s : nodes_[id].succs) {
            if (--unmet[s] == 0) ready.push(s);
        }
    }
    if (settled != nodes_.size()) {
        for (NodeId i = 0; i < nodes_.size(); ++i) {
            if (unmet[i] != 0) {
                throw GraphError("graph: dependency cycle through node " +
                                 std::to_string(i) + " ('" + nodes_[i].cfg.name +
                                 "'); " + std::to_string(nodes_.size() - settled) +
                                 " node(s) can never become ready");
            }
        }
    }
}

void Graph::reset_runtime() {
    if (static_nodes_ < nodes_.size()) {
        // Drop the previous run's dynamic nodes, and every edge that
        // pointed at them, so a resubmitted graph starts from its static
        // shape.
        nodes_.resize(static_nodes_);
        for (Node& n : nodes_) {
            std::erase_if(n.succs, [&](NodeId s) { return s >= static_nodes_; });
            std::erase_if(n.deps, [&](NodeId d) { return d >= static_nodes_; });
        }
    }
    for (Node& n : nodes_) {
        n.state = State::Pending;
        n.unmet = 0;
        n.stats = {};
    }
    for (const Node& n : nodes_) {
        for (const NodeId s : n.succs) ++nodes_[s].unmet;
    }
    stats_ = {};
}

bool Graph::executed(NodeId id) const {
    check_node_id(id, "executed() query");
    return nodes_[id].state == State::Done;
}

bool Graph::pruned(NodeId id) const {
    check_node_id(id, "pruned() query");
    return nodes_[id].state == State::Pruned;
}

const KernelStats& Graph::kernel_stats(NodeId id) const {
    check_node_id(id, "kernel_stats() query");
    const Node& n = nodes_[id];
    if (n.kind != Kind::Kernel) {
        throw GraphError("graph: node " + std::to_string(id) + " ('" + n.cfg.name +
                         "') is a host node; it has no KernelStats");
    }
    if (n.state != State::Done) {
        throw GraphError("graph: kernel node " + std::to_string(id) + " ('" +
                         n.cfg.name + "') did not execute");
    }
    return n.stats;
}

// ---------------------------------------------------------------------------
// GraphCtx — the dynamic-enqueue surface handed to host nodes

Graph::NodeId GraphCtx::enqueue_kernel(LaunchConfig cfg, Graph::KernelBody body,
                                       std::vector<Graph::NodeId> deps) {
    if (deps.empty()) deps.push_back(self_);
    Graph::Node n;
    n.kind = Graph::Kind::Kernel;
    n.cfg = std::move(cfg);
    n.body = std::move(body);
    return graph_.add_node(std::move(n), std::move(deps), /*dynamic=*/true);
}

Graph::NodeId GraphCtx::enqueue_kernel_if(LaunchConfig cfg, Graph::KernelBody body,
                                          Graph::Predicate pred,
                                          std::vector<Graph::NodeId> deps) {
    if (deps.empty()) deps.push_back(self_);
    Graph::Node n;
    n.kind = Graph::Kind::Kernel;
    n.cfg = std::move(cfg);
    n.body = std::move(body);
    n.pred = std::move(pred);
    return graph_.add_node(std::move(n), std::move(deps), /*dynamic=*/true);
}

Graph::NodeId GraphCtx::enqueue_host(std::string name, Graph::HostFn fn,
                                     std::vector<Graph::NodeId> deps) {
    if (deps.empty()) deps.push_back(self_);
    Graph::Node n;
    n.kind = Graph::Kind::Host;
    n.cfg.name = std::move(name);
    n.host = std::move(fn);
    return graph_.add_node(std::move(n), std::move(deps), /*dynamic=*/true);
}

void GraphCtx::prune(std::size_t count) {
    exec_of(graph_.exec_state_).stats.pruned += count;
}

// ---------------------------------------------------------------------------
// Device::submit — one scheduling round-trip for the whole DAG

namespace {

/// Shared state of the resident worker team.  One Device::submit holds the
/// pool's workers in a single ThreadPool::run for the whole graph: the
/// coordinator (worker 0) publishes each kernel node through the packed
/// `dispenser` word ((epoch << 32) | blocks-remaining), every worker — the
/// coordinator included — claims blocks by CAS on that word, and a node is
/// finished the moment `completed` reaches its grid size.  Nobody touches a
/// condition variable until the graph is drained, and a worker that never
/// claims a block never handshakes at all — so on a small grid the
/// coordinator drains the node solo at inline-launch speed while the others
/// keep yielding.  This is where the graph path beats the loop path: N
/// launches cost one park/wake instead of N, with no per-node barrier.
struct Team {
    std::atomic<std::uint64_t> dispenser{0};  ///< (epoch << 32) | remaining
    std::atomic<unsigned> completed{0};       ///< blocks finished this epoch
    std::atomic<bool> stop{false};

    // Published by the coordinator before each dispenser store (release) and
    // read by workers only after a successful claim: the CAS proves the
    // claimed epoch was still current at claim time, and the coordinator
    // cannot republish until `completed` reaches the grid size — which
    // needs every claimed block, ours included, to finish first.
    const LaunchConfig* cfg = nullptr;
    const std::function<void(BlockCtx&)>* body = nullptr;
    std::vector<detail::BlockRecord>* records = nullptr;
    bool sanitizing = false;

    std::mutex error_mutex;
    std::exception_ptr error;
    std::atomic<bool> failed{false};  ///< set with `error`; claims drain fast

    static std::uint64_t pack(std::uint32_t epoch, std::uint32_t remaining) {
        return (static_cast<std::uint64_t>(epoch) << 32) | remaining;
    }

    /// Claims one block of the current epoch; returns false when nothing is
    /// published or every block of the current epoch is already claimed.
    /// On success `epoch` names the claimed node's epoch and `remaining` the
    /// pre-claim count (block id = grid_dim - remaining, computed by the
    /// caller after reading the published grid — safe post-claim).
    bool try_claim(std::uint32_t& epoch, std::uint32_t& remaining) {
        std::uint64_t packed = dispenser.load(std::memory_order_acquire);
        for (;;) {
            epoch = static_cast<std::uint32_t>(packed >> 32);
            remaining = static_cast<std::uint32_t>(packed);
            if (epoch == 0 || remaining == 0) return false;
            if (dispenser.compare_exchange_weak(packed, pack(epoch, remaining - 1),
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
                return true;
            }
        }
    }
};

}  // namespace

GraphStats Device::submit(Graph& graph) {
    if (graph.executing_) {
        throw GraphError("graph: already executing (Device::submit is not reentrant)");
    }
    graph.validate();
    graph.reset_runtime();

    ExecState exec;
    for (Graph::NodeId i = 0; i < graph.nodes_.size(); ++i) {
        if (graph.nodes_[i].unmet == 0) exec.ready.push(i);
    }
    graph.exec_state_ = &exec;
    graph.executing_ = true;
    struct ExecGuard {
        Graph& g;
        ~ExecGuard() {
            g.executing_ = false;
            g.exec_state_ = nullptr;
        }
    } exec_guard{graph};

    const bool sanitizing = sanitize_options_.any();
    ThreadPool& workers_pool = pool();

    // Settling a node (Done or Pruned) releases its dependents; pruning
    // skips the node's own work only.
    std::size_t settled = 0;
    const auto settle = [&](Graph::NodeId id, Graph::State state) {
        Graph::Node& n = graph.nodes_[id];
        n.state = state;
        ++settled;
        bump_progress();  // node-granular heartbeat for watchdogs
        for (const Graph::NodeId s : n.succs) {
            if (--graph.nodes_[s].unmet == 0) exec.ready.push(s);
        }
    };

    // The scheduling loop, parameterized over how a kernel node's blocks
    // are dispatched (inline vs resident team).  Runs host nodes and
    // predicates on the scheduling thread; kernel nodes reuse the exact
    // validation / fault-hook / aggregation core of Device::launch.
    const auto drain = [&](const auto& exec_kernel) {
        while (!exec.ready.empty()) {
            const Graph::NodeId id = exec.ready.top();
            exec.ready.pop();
            Graph::Node& n = graph.nodes_[id];
            if (n.pred && !n.pred()) {
                ++exec.stats.pruned;
                settle(id, Graph::State::Pruned);
                continue;
            }
            if (n.kind == Graph::Kind::Kernel) {
                check_launch(n.cfg);
                n.stats = exec_kernel(n);
                ++exec.stats.kernel_nodes;
                exec.stats.modeled_ms += n.stats.modeled_ms;
                settle(id, Graph::State::Done);
            } else {
                GraphCtx ctx(graph, id);
                n.host(ctx);
                ++exec.stats.host_nodes;
                settle(id, Graph::State::Done);
            }
        }
        if (settled != graph.nodes_.size()) {
            throw GraphError("graph: deadlock — " +
                             std::to_string(graph.nodes_.size() - settled) +
                             " node(s) never became ready (dependency on a node "
                             "that never settled)");
        }
    };

    const auto t0 = std::chrono::steady_clock::now();
    if (host_workers_ <= 1) {
        // Sequential path: the scheduling thread runs every block through
        // slot 0, exactly like Device::launch's sequential path.
        workers_pool.reserve_slots(1);
        drain([&](Graph::Node& n) {
            std::vector<detail::BlockRecord> records(n.cfg.grid_dim);
            BlockCtx& ctx = workers_pool.block_ctx(0);
            ctx.configure(n.cfg.block_dim, n.cfg.grid_dim,
                          props_.shared_memory_per_block, thread_order_, /*slot=*/0,
                          exec_mode_, props_.warp_size);
            if (sanitizing) {
                ctx.enable_sanitize(sanitize_options_, n.cfg.name);
            } else {
                ctx.disable_sanitize();
            }
            const auto k0 = std::chrono::steady_clock::now();
            for (unsigned b = 0; b < n.cfg.grid_dim; ++b) {
                detail::run_block(n.body, ctx, cost_model_, b, records[b]);
            }
            const auto k1 = std::chrono::steady_clock::now();
            return finish_launch(
                n.cfg, records,
                std::chrono::duration<double, std::milli>(k1 - k0).count());
        });
    } else {
        Team team;
        const unsigned team_size = host_workers_;
        // Runs one claimed block, capturing any kernel-body exception so the
        // drain stays deterministic; the coordinator rethrows the first one.
        const auto run_claimed = [&](BlockCtx& ctx, unsigned block) {
            if (!team.failed.load(std::memory_order_relaxed)) {
                try {
                    detail::run_block(*team.body, ctx, cost_model_, block,
                                      (*team.records)[block]);
                } catch (...) {
                    const std::scoped_lock lock(team.error_mutex);
                    if (!team.error) team.error = std::current_exception();
                    team.failed.store(true, std::memory_order_release);
                }
            }
            team.completed.fetch_add(1, std::memory_order_release);
        };
        workers_pool.run(team_size, [&](unsigned w) {
            if (w != 0) {
                // Resident worker: claim blocks whenever the dispenser has
                // some, otherwise yield until the coordinator stops the
                // team.  A worker only configures its BlockCtx for a node
                // it actually claims a block of.
                std::uint32_t configured = 0;
                for (;;) {
                    std::uint32_t epoch = 0;
                    std::uint32_t remaining = 0;
                    if (!team.try_claim(epoch, remaining)) {
                        if (team.stop.load(std::memory_order_acquire)) return;
                        std::this_thread::yield();
                        continue;
                    }
                    const LaunchConfig& cfg = *team.cfg;
                    BlockCtx& ctx = workers_pool.block_ctx(w);
                    if (epoch != configured) {
                        ctx.configure(cfg.block_dim, cfg.grid_dim,
                                      props_.shared_memory_per_block, thread_order_,
                                      /*slot=*/w, exec_mode_, props_.warp_size);
                        if (team.sanitizing) {
                            ctx.enable_sanitize(sanitize_options_, cfg.name);
                        } else {
                            ctx.disable_sanitize();
                        }
                        configured = epoch;
                    }
                    run_claimed(ctx, cfg.grid_dim - remaining);
                }
            }
            // Coordinator: drains the DAG, working as block-puller 0 on
            // every kernel node.  Whatever happens, the team must be
            // stopped before this task returns or ThreadPool::run would
            // wait forever on the resident workers.
            std::uint32_t epoch_seq = 0;
            try {
                drain([&](Graph::Node& n) {
                    std::vector<detail::BlockRecord> records(n.cfg.grid_dim);
                    team.cfg = &n.cfg;
                    team.body = &n.body;
                    team.records = &records;
                    team.sanitizing = sanitizing;
                    team.completed.store(0, std::memory_order_relaxed);
                    const auto k0 = std::chrono::steady_clock::now();
                    team.dispenser.store(Team::pack(++epoch_seq, n.cfg.grid_dim),
                                         std::memory_order_release);
                    BlockCtx& ctx = workers_pool.block_ctx(0);
                    ctx.configure(n.cfg.block_dim, n.cfg.grid_dim,
                                  props_.shared_memory_per_block, thread_order_,
                                  /*slot=*/0, exec_mode_, props_.warp_size);
                    if (sanitizing) {
                        ctx.enable_sanitize(sanitize_options_, n.cfg.name);
                    } else {
                        ctx.disable_sanitize();
                    }
                    std::uint32_t epoch = 0;
                    std::uint32_t remaining = 0;
                    while (team.try_claim(epoch, remaining)) {
                        run_claimed(ctx, n.cfg.grid_dim - remaining);
                    }
                    while (team.completed.load(std::memory_order_acquire) !=
                           n.cfg.grid_dim) {
                        std::this_thread::yield();
                    }
                    const auto k1 = std::chrono::steady_clock::now();
                    if (team.failed.load(std::memory_order_acquire)) {
                        const std::scoped_lock lock(team.error_mutex);
                        std::rethrow_exception(std::exchange(team.error, nullptr));
                    }
                    return finish_launch(
                        n.cfg, records,
                        std::chrono::duration<double, std::milli>(k1 - k0).count());
                });
            } catch (...) {
                team.stop.store(true, std::memory_order_release);
                throw;
            }
            team.stop.store(true, std::memory_order_release);
        });
    }
    const auto t1 = std::chrono::steady_clock::now();

    exec.stats.nodes_executed = exec.stats.kernel_nodes + exec.stats.host_nodes;
    exec.stats.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    graph.stats_ = exec.stats;

    graph_telemetry_.graphs += 1;
    graph_telemetry_.nodes += exec.stats.nodes_executed;
    graph_telemetry_.kernel_nodes += exec.stats.kernel_nodes;
    graph_telemetry_.host_nodes += exec.stats.host_nodes;
    graph_telemetry_.device_enqueued += exec.stats.device_enqueued;
    graph_telemetry_.pruned += exec.stats.pruned;
    return graph.stats_;
}

}  // namespace simt
