#pragma once

#include <cstdint>

namespace simt {

/// Per-lane (per logical thread) event counters.
///
/// Kernels self-report their work through ThreadCtx helpers; the cost model
/// converts lane counters into warp-level time (taking the max across the
/// lanes of a warp, which is how lock-step execution pays for divergence and
/// load imbalance) and into global-memory traffic.
struct LaneCounters {
    std::uint64_t ops = 0;                ///< simple ALU ops (compare, add, ...)
    std::uint64_t shared_accesses = 0;    ///< shared-memory loads + stores
    std::uint64_t coalesced_bytes = 0;    ///< global bytes moved in coalesced form
    std::uint64_t random_accesses = 0;    ///< scattered global loads/stores

    LaneCounters& operator+=(const LaneCounters& o) {
        ops += o.ops;
        shared_accesses += o.shared_accesses;
        coalesced_bytes += o.coalesced_bytes;
        random_accesses += o.random_accesses;
        return *this;
    }
};

}  // namespace simt
