#pragma once

#include <cstddef>
#include <string>

namespace simt {

/// Static description of the simulated device.
///
/// Defaults model the NVIDIA Tesla K40c used in the paper's evaluation
/// (15 SMs x 192 cores, 745 MHz, 11520 MB GDDR5 at 288 GB/s, 48 KB shared
/// memory per block).  All cost-model constants live here so that every
/// experiment in the repo runs against one frozen calibration.
struct DeviceProperties {
    std::string name = "Simulated Tesla K40c";

    // -- execution resources -------------------------------------------------
    unsigned sm_count = 15;
    unsigned cores_per_sm = 192;
    unsigned warp_size = 32;
    unsigned max_threads_per_block = 1024;
    unsigned max_threads_per_sm = 2048;
    unsigned max_blocks_per_sm = 16;

    // -- memory resources -----------------------------------------------------
    std::size_t global_memory_bytes = 11520ull * 1024 * 1024;
    std::size_t shared_memory_per_block = 48 * 1024;
    std::size_t shared_memory_per_sm = 48 * 1024;

    // -- cost model constants -------------------------------------------------
    double core_clock_ghz = 0.745;      ///< SM clock.
    double mem_bandwidth_gbps = 288.0;  ///< GDDR5 peak.
    double pcie_bandwidth_gbps = 12.0;  ///< effective host<->device (gen3 x16).
    double cpi = 1.0;                   ///< cycles per simple ALU op per lane.
    double shared_access_cycles = 1.0;  ///< amortized shared-memory access.
    double uncoalesced_segment_bytes = 32.0;  ///< bytes fetched per scattered access.
    double kernel_launch_overhead_ms = 0.005;
    /// Calibration derate: ratio of achievable to peak throughput for the
    /// paper's (unoptimized research) kernels.  Calibrated once against the
    /// absolute scale of the paper's Fig. 4 and frozen; every experiment uses
    /// the same value, so relative comparisons are unaffected by it.
    double efficiency_derate = 10.0;

    /// Warp slots that can issue concurrently on one SM.
    [[nodiscard]] unsigned concurrent_warps_per_sm() const {
        return cores_per_sm / warp_size;
    }
};

/// The device the paper evaluated on.
[[nodiscard]] inline DeviceProperties tesla_k40c() { return {}; }

/// A deliberately tiny device, handy for exercising capacity limits in tests.
[[nodiscard]] inline DeviceProperties tiny_device(std::size_t global_bytes,
                                                  std::size_t shared_bytes = 48 * 1024) {
    DeviceProperties p;
    p.name = "Simulated tiny device";
    p.global_memory_bytes = global_bytes;
    p.shared_memory_per_block = shared_bytes;
    p.shared_memory_per_sm = shared_bytes;
    return p;
}

}  // namespace simt
