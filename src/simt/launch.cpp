#include <atomic>
#include <chrono>
#include <thread>

#include "simt/device.hpp"
#include "simt/launch_detail.hpp"

namespace simt {

void Device::check_launch(const LaunchConfig& cfg) {
    bump_progress();  // heartbeat: a launch reached the device
    if (cfg.grid_dim == 0 || cfg.block_dim == 0) {
        throw LaunchError("launch '" + cfg.name + "': zero grid or block dimension");
    }
    if (cfg.block_dim > props_.max_threads_per_block) {
        throw LaunchError("launch '" + cfg.name + "': block_dim " +
                          std::to_string(cfg.block_dim) + " exceeds device limit " +
                          std::to_string(props_.max_threads_per_block));
    }

    if (faults_) {
        // Corruption models bit flips since the previous launch, so it is
        // applied (and, in detected mode, raised) before this kernel's body
        // consumes the data; the launch-fail check then decides whether the
        // launch itself is refused.  Neither hook runs a block or logs stats.
        const auto corrupt = faults_->on_launch_corrupt(memory_, cfg.name);
        std::uint64_t launch_ordinal = 0;
        const bool refuse = faults_->on_launch_fail(cfg.name, launch_ordinal);
        if (corrupt.fired && corrupt.detected) {
            throw TransferError(corrupt.offset, corrupt.bits);
        }
        if (refuse) {
            throw LaunchFault(cfg.name, launch_ordinal);
        }
        if (faults_->on_launch_hang(cfg.name, launch_ordinal)) {
            // The stuck-kernel arm: hold the launch in wall time, polling the
            // hang handler, until it says Abort or the plan's safety valve
            // expires.  Progress ticks are NOT bumped while hung — that is
            // exactly the stagnation a watchdog detects.
            const auto& plan = faults_->plan();
            const auto poll = std::chrono::microseconds(std::max<std::uint64_t>(
                plan.hang_check_us, 1));
            const auto start = std::chrono::steady_clock::now();
            for (;;) {
                if (hang_handler_ && hang_handler_() == HangAction::Abort) break;
                const double hung_ms = std::chrono::duration<double, std::milli>(
                                           std::chrono::steady_clock::now() - start)
                                           .count();
                if (hung_ms >= plan.hang_max_ms) break;
                std::this_thread::sleep_for(poll);
            }
            const double hung_ms = std::chrono::duration<double, std::milli>(
                                       std::chrono::steady_clock::now() - start)
                                       .count();
            throw StallFault(cfg.name, launch_ordinal, hung_ms);
        }
    }
}

KernelStats Device::finish_launch(const LaunchConfig& cfg,
                                  std::vector<detail::BlockRecord>& records,
                                  double wall_ms) {
    KernelStats stats;
    stats.name = cfg.name;
    stats.grid_dim = cfg.grid_dim;
    stats.block_dim = cfg.block_dim;
    stats.wall_ms = wall_ms;

    // Deterministic aggregation in block order.
    std::vector<double> block_cycles(cfg.grid_dim);
    double traffic = 0.0;
    for (unsigned b = 0; b < cfg.grid_dim; ++b) {
        block_cycles[b] = records[b].cycles;
        traffic += records[b].traffic;
        stats.totals += records[b].totals;
        stats.warp_max_cycles += records[b].warp_max_cycles;
        stats.warp_mean_cycles += records[b].warp_mean_cycles;
        stats.shared_bytes_per_block =
            std::max(stats.shared_bytes_per_block, records[b].shared_high_water);
    }
    stats.imbalance =
        stats.warp_mean_cycles > 0.0 ? stats.warp_max_cycles / stats.warp_mean_cycles : 1.0;

    cost_model_.finalize(stats, block_cycles, traffic);
    kernel_log_.push_back(stats);

    if (sanitize_options_.any()) {
        // Merge per-block sanitizer results in block order (deterministic
        // for any worker count), capped at max_findings per launch.
        sanitize::LaunchSanitizeStats ls;
        ls.kernel = cfg.name;
        ls.grid_dim = cfg.grid_dim;
        ls.block_dim = cfg.block_dim;
        std::size_t launch_findings = 0;
        for (unsigned b = 0; b < cfg.grid_dim; ++b) {
            sanitize::SlotShadow::BlockResult& san = records[b].san;
            ls.tracked_accesses += san.tracked_accesses;
            ls.bank_conflict_cycles += san.bank_conflict_cycles;
            ls.worst_bank_degree = std::max(ls.worst_bank_degree, san.worst_bank_degree);
            sanitize_report_.suppressed += san.suppressed;
            for (sanitize::Finding& f : san.findings) {
                if (launch_findings < sanitize_options_.max_findings) {
                    sanitize_report_.findings.push_back(std::move(f));
                    ++launch_findings;
                } else {
                    ++sanitize_report_.suppressed;
                }
            }
        }
        ls.findings = launch_findings;
        sanitize_report_.launches.push_back(std::move(ls));
        if (sanitize_options_.strict && launch_findings > 0) {
            throw SanitizeError(cfg.name, launch_findings);
        }
    }
    bump_progress();  // heartbeat: the launch retired
    return stats;
}

KernelStats Device::launch(const LaunchConfig& cfg,
                           const std::function<void(BlockCtx&)>& body) {
    check_launch(cfg);

    const bool sanitizing = sanitize_options_.any();
    std::vector<detail::BlockRecord> records(cfg.grid_dim);
    const unsigned workers = std::min(host_workers_, cfg.grid_dim);
    ThreadPool& workers_pool = pool();

    const auto t0 = std::chrono::steady_clock::now();
    if (workers <= 1) {
        // Sequential path still goes through slot 0 so the shared-memory
        // arena is reused across launches instead of reallocated.
        workers_pool.reserve_slots(1);
        BlockCtx& ctx = workers_pool.block_ctx(0);
        ctx.configure(cfg.block_dim, cfg.grid_dim, props_.shared_memory_per_block,
                      thread_order_, /*slot=*/0, exec_mode_, props_.warp_size);
        if (sanitizing) {
            ctx.enable_sanitize(sanitize_options_, cfg.name);
        } else {
            ctx.disable_sanitize();
        }
        for (unsigned b = 0; b < cfg.grid_dim; ++b) {
            detail::run_block(body, ctx, cost_model_, b, records[b]);
        }
    } else {
        // Persistent worker pool: each worker owns a BlockCtx (its execution
        // slot) and pulls block ids from a shared counter.  A failing block
        // drains the counter so peers stop early; the pool rethrows the
        // first exception after every worker has stopped.  Shadow state is
        // per slot, so sanitizing needs no cross-worker synchronization.
        std::atomic<unsigned> next{0};
        workers_pool.run(workers, [&](unsigned w) {
            BlockCtx& ctx = workers_pool.block_ctx(w);
            ctx.configure(cfg.block_dim, cfg.grid_dim, props_.shared_memory_per_block,
                          thread_order_, /*slot=*/w, exec_mode_, props_.warp_size);
            if (sanitizing) {
                ctx.enable_sanitize(sanitize_options_, cfg.name);
            } else {
                ctx.disable_sanitize();
            }
            try {
                for (unsigned b = next.fetch_add(1); b < cfg.grid_dim;
                     b = next.fetch_add(1)) {
                    detail::run_block(body, ctx, cost_model_, b, records[b]);
                }
            } catch (...) {
                next.store(cfg.grid_dim);  // drain remaining work
                throw;
            }
        });
    }
    const auto t1 = std::chrono::steady_clock::now();
    return finish_launch(cfg, records,
                         std::chrono::duration<double, std::milli>(t1 - t0).count());
}

double Device::total_modeled_ms() const {
    double total = 0.0;
    for (const KernelStats& k : kernel_log_) total += k.modeled_ms;
    return total;
}

double Device::total_wall_ms() const {
    double total = 0.0;
    for (const KernelStats& k : kernel_log_) total += k.wall_ms;
    return total;
}

}  // namespace simt
