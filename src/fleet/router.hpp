#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace gas::fleet {

/// How the serving layer places a request onto one device of a fleet.
///
///  LeastLoaded    — the live device with the fewest queued elements (ties
///                   break to the lowest index).  Best raw balance; no
///                   affinity.
///  ConsistentHash — a hash ring over the devices (64 virtual nodes each),
///                   keyed by the request fingerprint.  A request's content
///                   always lands on the same device, and losing a device
///                   only remaps the keys that lived on it — the classic
///                   cache-affinity trade.
///  KeyRange       — each live device owns a contiguous slice of the key
///                   space; a request routes by its sampled key hint.  The
///                   splitter-based decomposition of GPU Sample Sort lifted
///                   one level up: arrays with nearby keys share a device,
///                   which keeps per-device key ranges tight (and the
///                   pruned-radix / max-key machinery effective).
enum class RoutePolicy : std::uint8_t { LeastLoaded, ConsistentHash, KeyRange };

[[nodiscard]] inline std::string to_string(RoutePolicy p) {
    switch (p) {
        case RoutePolicy::LeastLoaded: return "least-loaded";
        case RoutePolicy::ConsistentHash: return "consistent-hash";
        case RoutePolicy::KeyRange: return "key-range";
    }
    return "?";
}

/// Parses "least-loaded" / "consistent-hash" / "key-range" (the CLI
/// spellings); returns false and leaves `out` untouched on anything else.
[[nodiscard]] bool parse_route_policy(const std::string& name, RoutePolicy& out);

/// What the router knows about one request (computed once at submit and
/// carried with the request so re-routes after a device loss are cheap).
struct RouteInfo {
    std::uint64_t fingerprint = 0;  ///< content+shape hash (ConsistentHash key)
    double key_hint = 0.0;          ///< representative sampled key (KeyRange)
    std::size_t elements = 0;       ///< load the request adds to a queue
};

/// What the router knows about one device at decision time.
///
/// The defaults for `smoothed_load` and `weight` make LeastLoaded rank by
/// raw queued_elements exactly as before they existed; callers that track a
/// queue-depth EWMA (gas::serve) or ramp re-admitted devices (gas::health
/// probation) opt in by filling them.
struct ShardLoad {
    std::size_t queued_elements = 0;  ///< elements waiting in its queue
    /// EWMA of queued_elements: folded into LeastLoaded ranking so a shard
    /// whose queue momentarily drains does not yank every new request away
    /// from its peers (route flapping on transient spikes).
    double smoothed_load = 0.0;
    /// Routing weight in (0, 1]: pressure is divided by it, so a 0.25-weight
    /// shard looks 4x as loaded and receives proportionally less traffic
    /// (probation ramps, degraded penalties).  Values <= 0 are clamped.
    double weight = 1.0;
    bool live = true;      ///< not quarantined (device loss)
    bool eligible = true;  ///< live AND the request fits this device's budget
};

/// Pluggable request-to-device placement.  Stateless per decision: every
/// route() call gets the current per-device loads, so the same Router
/// serves concurrent schedulers without synchronization.
class Router {
  public:
    /// The paper's key domain ([0, 2^31) uniform floats): the default
    /// normalization for KeyRange hints.
    static constexpr double kDefaultKeySpace = 2147483648.0;

    Router(RoutePolicy policy, std::size_t devices, double key_space = kDefaultKeySpace);

    [[nodiscard]] RoutePolicy policy() const { return policy_; }
    [[nodiscard]] std::size_t devices() const { return devices_; }

    /// Picks a device for the request.  Only eligible devices are
    /// considered; with none eligible the live ones are, keeping a request
    /// on *some* device (which may then degrade it to its host path).
    /// Returns `devices()` when nothing is live — the caller decides where
    /// an all-devices-lost request goes (host fallback).
    [[nodiscard]] std::size_t route(const RouteInfo& info,
                                    std::span<const ShardLoad> loads) const;

    /// Installs data-driven KeyRange bands: `bands[i]` is the inclusive
    /// upper key bound of the i-th live owner's slice (ascending, one entry
    /// per device, typically the equal-mass boundaries of an observed key
    /// histogram — gas::tune::Controller::key_bands).  Empty restores the
    /// default equal-width split.  Throws std::invalid_argument on a size
    /// mismatch or a non-ascending sequence.  Callers synchronize: route()
    /// reads the bands without locking.
    void set_key_bands(std::vector<double> bands);
    [[nodiscard]] const std::vector<double>& key_bands() const { return bands_; }

  private:
    [[nodiscard]] std::size_t least_loaded(std::span<const ShardLoad> loads,
                                           bool need_eligible) const;
    [[nodiscard]] std::size_t ring_walk(std::uint64_t key, std::span<const ShardLoad> loads,
                                        bool need_eligible) const;
    [[nodiscard]] std::size_t key_range(double hint, std::span<const ShardLoad> loads,
                                        bool need_eligible) const;

    RoutePolicy policy_;
    std::size_t devices_;
    double key_space_;
    /// Consistent-hash ring: (point, device) sorted by point.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
    /// KeyRange bands (per-device upper key bounds); empty = equal split.
    std::vector<double> bands_;
};

}  // namespace gas::fleet
