#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "simt/device.hpp"
#include "simt/device_properties.hpp"

namespace gas::fleet {

/// A fleet of simulated SIMT devices — the unit the multi-device serving
/// layer schedules over.
///
/// The fleet owns device *instances*; per-device serving state (queue,
/// BufferPool, Timeline set, scheduler thread) belongs to the server shard
/// driving each device, preserving the substrate's single-caller launch
/// contract: exactly one scheduler thread touches one device.
///
/// Devices may be heterogeneous — each can carry its own DeviceProperties
/// (memory capacity, SM count, bandwidth), and routing eligibility accounts
/// for per-device budgets.  Two ownership modes:
///  * constructing from properties creates and owns the devices;
///  * constructing from Device references borrows externally owned devices
///    (how the classic single-device Server wraps its Device& argument —
///    the N=1 degenerate fleet).
class DeviceFleet {
  public:
    /// Owns `count` homogeneous devices.
    explicit DeviceFleet(std::size_t count,
                         simt::DeviceProperties props = simt::tesla_k40c(),
                         simt::DeviceMemory::Mode mode = simt::DeviceMemory::Mode::Backed,
                         unsigned host_workers = 1);

    /// Owns one device per property set (heterogeneous fleet).
    explicit DeviceFleet(std::vector<simt::DeviceProperties> props,
                         simt::DeviceMemory::Mode mode = simt::DeviceMemory::Mode::Backed,
                         unsigned host_workers = 1);

    /// Borrows one externally owned device (the N=1 degenerate fleet).
    explicit DeviceFleet(simt::Device& device);

    /// Borrows externally owned devices; pointers must be non-null and
    /// outlive the fleet.
    explicit DeviceFleet(std::vector<simt::Device*> devices);

    DeviceFleet(const DeviceFleet&) = delete;
    DeviceFleet& operator=(const DeviceFleet&) = delete;

    [[nodiscard]] std::size_t size() const { return devices_.size(); }
    [[nodiscard]] simt::Device& device(std::size_t i) { return *devices_.at(i); }
    [[nodiscard]] const simt::Device& device(std::size_t i) const {
        return *devices_.at(i);
    }

    /// Convenience broadcasts (benches/CLI): apply to every device.
    void set_exec_mode(simt::ExecMode mode);
    void set_host_workers(unsigned workers);

  private:
    std::vector<std::unique_ptr<simt::Device>> owned_;
    std::vector<simt::Device*> devices_;
};

}  // namespace gas::fleet
