#include "fleet/fleet.hpp"

#include <stdexcept>
#include <utility>

namespace gas::fleet {

DeviceFleet::DeviceFleet(std::size_t count, simt::DeviceProperties props,
                         simt::DeviceMemory::Mode mode, unsigned host_workers) {
    if (count == 0) throw std::invalid_argument("fleet::DeviceFleet: 0 devices");
    owned_.reserve(count);
    devices_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        owned_.push_back(std::make_unique<simt::Device>(props, mode, host_workers));
        devices_.push_back(owned_.back().get());
    }
}

DeviceFleet::DeviceFleet(std::vector<simt::DeviceProperties> props,
                         simt::DeviceMemory::Mode mode, unsigned host_workers) {
    if (props.empty()) throw std::invalid_argument("fleet::DeviceFleet: 0 devices");
    owned_.reserve(props.size());
    devices_.reserve(props.size());
    for (auto& p : props) {
        owned_.push_back(std::make_unique<simt::Device>(std::move(p), mode, host_workers));
        devices_.push_back(owned_.back().get());
    }
}

DeviceFleet::DeviceFleet(simt::Device& device) { devices_.push_back(&device); }

DeviceFleet::DeviceFleet(std::vector<simt::Device*> devices)
    : devices_(std::move(devices)) {
    if (devices_.empty()) throw std::invalid_argument("fleet::DeviceFleet: 0 devices");
    for (simt::Device* d : devices_) {
        if (d == nullptr) throw std::invalid_argument("fleet::DeviceFleet: null device");
    }
}

void DeviceFleet::set_exec_mode(simt::ExecMode mode) {
    for (simt::Device* d : devices_) d->set_exec_mode(mode);
}

void DeviceFleet::set_host_workers(unsigned workers) {
    for (simt::Device* d : devices_) d->set_host_workers(workers);
}

}  // namespace gas::fleet
