#include "fleet/router.hpp"

#include <algorithm>
#include <stdexcept>

namespace gas::fleet {

namespace {

/// splitmix64 finalizer — the same decision hash the fault injector uses,
/// giving ring points and key spreading good avalanche behavior.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

constexpr std::size_t kVirtualNodes = 64;  ///< ring points per device

bool acceptable(const ShardLoad& l, bool need_eligible) {
    return need_eligible ? (l.live && l.eligible) : l.live;
}

}  // namespace

bool parse_route_policy(const std::string& name, RoutePolicy& out) {
    if (name == "least-loaded") {
        out = RoutePolicy::LeastLoaded;
    } else if (name == "consistent-hash") {
        out = RoutePolicy::ConsistentHash;
    } else if (name == "key-range") {
        out = RoutePolicy::KeyRange;
    } else {
        return false;
    }
    return true;
}

Router::Router(RoutePolicy policy, std::size_t devices, double key_space)
    : policy_(policy), devices_(devices), key_space_(key_space) {
    if (devices == 0) throw std::invalid_argument("fleet::Router: 0 devices");
    if (!(key_space > 0.0)) throw std::invalid_argument("fleet::Router: key space <= 0");
    if (policy_ == RoutePolicy::ConsistentHash) {
        ring_.reserve(devices_ * kVirtualNodes);
        for (std::size_t d = 0; d < devices_; ++d) {
            for (std::size_t v = 0; v < kVirtualNodes; ++v) {
                ring_.emplace_back(mix64(mix64(d + 1) ^ (v * 0x517cc1b727220a95ull)),
                                   static_cast<std::uint32_t>(d));
            }
        }
        std::sort(ring_.begin(), ring_.end());
    }
}

std::size_t Router::route(const RouteInfo& info, std::span<const ShardLoad> loads) const {
    if (loads.size() != devices_) {
        throw std::invalid_argument("fleet::Router::route: load view size mismatch");
    }
    const bool any_live = std::any_of(loads.begin(), loads.end(),
                                      [](const ShardLoad& l) { return l.live; });
    if (!any_live) return devices_;
    const bool any_eligible =
        std::any_of(loads.begin(), loads.end(),
                    [](const ShardLoad& l) { return l.live && l.eligible; });
    switch (policy_) {
        case RoutePolicy::LeastLoaded: return least_loaded(loads, any_eligible);
        case RoutePolicy::ConsistentHash:
            return ring_walk(mix64(info.fingerprint), loads, any_eligible);
        case RoutePolicy::KeyRange: return key_range(info.key_hint, loads, any_eligible);
    }
    return least_loaded(loads, any_eligible);
}

std::size_t Router::least_loaded(std::span<const ShardLoad> loads,
                                 bool need_eligible) const {
    // Effective pressure blends the instantaneous backlog with its EWMA —
    // a shard whose queue just drained still remembers its recent load, so
    // transient spikes do not flap every new request onto it — and divides
    // by the routing weight so ramping (probation) shards fill gradually.
    // With the ShardLoad defaults (smoothed 0, weight 1) this ranks by raw
    // queued_elements exactly as before; ties still break to lowest index
    // via the strict <.
    const auto pressure = [](const ShardLoad& l) {
        const double w = std::max(l.weight, 1e-9);
        return (static_cast<double>(l.queued_elements) + l.smoothed_load) / w;
    };
    std::size_t best = devices_;
    for (std::size_t i = 0; i < loads.size(); ++i) {
        if (!acceptable(loads[i], need_eligible)) continue;
        if (best == devices_ || pressure(loads[i]) < pressure(loads[best])) {
            best = i;
        }
    }
    return best;
}

std::size_t Router::ring_walk(std::uint64_t key, std::span<const ShardLoad> loads,
                              bool need_eligible) const {
    // First ring point at or after the key, then clockwise until the owner
    // is acceptable: losing a device hands only its arcs to the successors.
    auto it = std::lower_bound(ring_.begin(), ring_.end(),
                               std::make_pair(key, std::uint32_t{0}));
    for (std::size_t step = 0; step < ring_.size(); ++step, ++it) {
        if (it == ring_.end()) it = ring_.begin();
        if (acceptable(loads[it->second], need_eligible)) return it->second;
    }
    return devices_;
}

void Router::set_key_bands(std::vector<double> bands) {
    if (bands.empty()) {
        bands_.clear();
        return;
    }
    if (bands.size() != devices_) {
        throw std::invalid_argument("fleet::Router::set_key_bands: need one band per device");
    }
    for (std::size_t i = 1; i < bands.size(); ++i) {
        if (bands[i] < bands[i - 1]) {
            throw std::invalid_argument("fleet::Router::set_key_bands: bands not ascending");
        }
    }
    bands_ = std::move(bands);
}

std::size_t Router::key_range(double hint, std::span<const ShardLoad> loads,
                              bool need_eligible) const {
    std::vector<std::size_t> owners;
    owners.reserve(loads.size());
    for (std::size_t i = 0; i < loads.size(); ++i) {
        if (acceptable(loads[i], need_eligible)) owners.push_back(i);
    }
    if (owners.empty()) return devices_;
    if (!bands_.empty()) {
        // Data-driven bands: the first acceptable owner whose upper bound
        // covers the hint (a quarantined owner's slice falls to the next
        // live one); past the last band, the last owner.
        for (const std::size_t d : owners) {
            if (hint <= bands_[d]) return d;
        }
        return owners.back();
    }
    double frac = hint / key_space_;
    frac = std::clamp(frac, 0.0, 1.0);
    std::size_t rank = static_cast<std::size_t>(frac * static_cast<double>(owners.size()));
    rank = std::min(rank, owners.size() - 1);
    return owners[rank];
}

}  // namespace gas::fleet
