#pragma once

#include <vector>

#include "msdata/spectrum.hpp"

namespace msdata {

/// Fixed-width m/z binning — the vectorization step spectral-comparison
/// algorithms (library search, clustering) run after preprocessing.
struct BinningOptions {
    float min_mz = 100.0f;
    float max_mz = 2000.0f;
    float bin_width = 1.0f;  ///< ~1 Da bins, the common coarse setting
};

/// Number of bins the options define.
[[nodiscard]] std::size_t bin_count(const BinningOptions& opts);

/// Bins one spectrum: each bin accumulates the intensities of the peaks
/// whose m/z falls inside it; out-of-range peaks are dropped.
[[nodiscard]] std::vector<float> bin_spectrum(const Spectrum& s,
                                              const BinningOptions& opts = {});

/// Cosine similarity between two binned spectra (0 when either is all-zero).
[[nodiscard]] double cosine_similarity(const std::vector<float>& a,
                                       const std::vector<float>& b);

/// Pairwise similarity of a whole set against one query spectrum; returns
/// one score per set member.  The building block of spectral library search.
[[nodiscard]] std::vector<double> search_similarity(const SpectraSet& set,
                                                    const Spectrum& query,
                                                    const BinningOptions& opts = {});

}  // namespace msdata
