#include "msdata/precursor_index.hpp"

#include <algorithm>
#include <cmath>

#include "core/pair_sort.hpp"

namespace msdata {

PrecursorIndex::PrecursorIndex(simt::Device& device, const SpectraSet& set) {
    const std::size_t count = set.size();
    if (count == 0) return;

    std::vector<double> keys(count);
    std::vector<double> payload(count);
    for (std::size_t i = 0; i < count; ++i) {
        keys[i] = set.spectra[i].precursor_mz;
        payload[i] = static_cast<double>(i);  // spectrum ids ride as values
    }
    // One "array" spanning the whole set: the device pair sort orders the
    // ids by precursor mass.  (Sets beyond the shared-staging bound are
    // chunk-sorted and merged on the host.)
    const std::size_t chunk =
        std::min<std::size_t>(count, 2048);  // 2 x 2048 doubles = 32 KB shared
    std::vector<std::uint64_t> offsets;
    for (std::size_t base = 0; base <= count; base += chunk) {
        offsets.push_back(std::min(base, count));
    }
    if (offsets.back() != count) offsets.push_back(count);
    gas::gpu_ragged_pair_sort(device, keys, payload, offsets);

    // Merge the sorted chunks host-side (k-way via repeated two-way merge;
    // chunk counts are tiny).
    mz_.assign(keys.begin(), keys.end());
    id_.resize(count);
    std::vector<std::size_t> perm(count);
    for (std::size_t i = 0; i < count; ++i) perm[i] = static_cast<std::size_t>(payload[i]);
    if (offsets.size() > 2) {
        std::vector<std::size_t> idx(offsets.size() - 1);
        for (std::size_t k = 0; k + 1 < offsets.size(); ++k) idx[k] = offsets[k];
        std::vector<double> merged_mz;
        std::vector<std::size_t> merged_id;
        merged_mz.reserve(count);
        merged_id.reserve(count);
        while (merged_mz.size() < count) {
            std::size_t best = offsets.size();
            for (std::size_t k = 0; k + 1 < offsets.size(); ++k) {
                if (idx[k] == offsets[k + 1]) continue;
                if (best == offsets.size() || mz_[idx[k]] < mz_[idx[best]]) best = k;
            }
            merged_mz.push_back(mz_[idx[best]]);
            merged_id.push_back(perm[idx[best]]);
            ++idx[best];
        }
        mz_ = std::move(merged_mz);
        id_ = std::move(merged_id);
    } else {
        id_ = std::move(perm);
    }
}

std::vector<std::size_t> PrecursorIndex::query(double center, double tolerance) const {
    std::vector<std::size_t> out;
    if (mz_.empty() || !(tolerance >= 0.0)) return out;
    const auto lo = std::lower_bound(mz_.begin(), mz_.end(), center - tolerance);
    const auto hi = std::upper_bound(mz_.begin(), mz_.end(), center + tolerance);
    const auto begin = static_cast<std::size_t>(lo - mz_.begin());
    const auto end = static_cast<std::size_t>(hi - mz_.begin());
    out.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) out.push_back(id_[i]);
    return out;
}

std::vector<std::size_t> PrecursorIndex::query_ppm(double center, double ppm) const {
    return query(center, std::abs(center) * ppm * 1e-6);
}

}  // namespace msdata
