#pragma once

#include <cstdint>

#include "msdata/spectrum.hpp"

namespace msdata {

/// Knobs for the synthetic spectra generator (substitute for the proprietary
/// proteomics datasets the paper's group works with; see DESIGN.md).
struct SynthOptions {
    std::size_t min_peaks = 200;
    std::size_t max_peaks = 4000;  ///< paper: spectra carry up to 4000 peaks
    float min_mz = 100.0f;
    float max_mz = 2000.0f;
    /// Fraction of peaks that are background noise (low log-normal
    /// intensity); the rest are "signal" peaks 10-100x stronger.
    double noise_fraction = 0.8;
    std::uint64_t seed = 7;
};

/// Generates `count` spectra with uniformly random m/z positions, log-normal
/// noise intensities and a sparse population of strong signal peaks — the
/// same heavy-tailed intensity shape MS-REDUCE-style reduction assumes.
/// Peaks are emitted in m/z-scan order (ascending m/z), like a real
/// instrument; intensities are unordered, which is why downstream algorithms
/// need the array sort.
[[nodiscard]] SpectraSet generate_spectra(std::size_t count, const SynthOptions& opts = {});

}  // namespace msdata
