#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace msdata {

/// One peak of a mass spectrum: mass-to-charge ratio and intensity.
struct Peak {
    float mz = 0.0f;
    float intensity = 0.0f;

    friend bool operator==(const Peak&, const Peak&) = default;
};

/// One MS/MS spectrum — the "small array" of the paper's motivating domain.
/// Real proteomics spectra carry up to ~4000 peaks including noise (section
/// 4), which is exactly the largest array size the paper evaluates.
struct Spectrum {
    std::string title;
    double precursor_mz = 0.0;
    int charge = 2;
    std::vector<Peak> peaks;

    [[nodiscard]] std::size_t size() const { return peaks.size(); }
};

/// A dataset of spectra (the "large number of smaller arrays").
struct SpectraSet {
    std::vector<Spectrum> spectra;

    [[nodiscard]] std::size_t size() const { return spectra.size(); }
    [[nodiscard]] std::size_t total_peaks() const {
        std::size_t total = 0;
        for (const auto& s : spectra) total += s.size();
        return total;
    }
    [[nodiscard]] std::size_t max_peaks() const {
        std::size_t m = 0;
        for (const auto& s : spectra) m = std::max(m, s.size());
        return m;
    }
};

}  // namespace msdata
