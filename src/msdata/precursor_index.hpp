#pragma once

#include <cstdint>
#include <vector>

#include "msdata/spectrum.hpp"
#include "simt/device.hpp"

namespace msdata {

/// Precursor-mass index: the lookup structure every database-search engine
/// (SEQUEST/Mascot-style, per the paper's citations [12][13]) builds first —
/// spectra ordered by precursor m/z so that candidates for a peptide fall in
/// one contiguous window.
///
/// Construction sorts (precursor m/z, spectrum id) pairs on the device with
/// the double-precision key-value array sort; queries are host-side binary
/// searches over the sorted keys.
class PrecursorIndex {
  public:
    /// Builds the index for `set` on `device`.  The set itself is not
    /// modified; the index refers to spectra by their position in `set`.
    PrecursorIndex(simt::Device& device, const SpectraSet& set);

    [[nodiscard]] std::size_t size() const { return mz_.size(); }

    /// Spectrum ids whose precursor m/z lies in [center - tol, center + tol],
    /// in ascending precursor order.
    [[nodiscard]] std::vector<std::size_t> query(double center, double tolerance) const;

    /// Same, with tolerance in parts-per-million of `center` (the unit
    /// search engines use).
    [[nodiscard]] std::vector<std::size_t> query_ppm(double center, double ppm) const;

    /// Sorted precursor masses (ascending) — for range scans and tests.
    [[nodiscard]] const std::vector<double>& sorted_mz() const { return mz_; }

  private:
    std::vector<double> mz_;       ///< sorted ascending
    std::vector<std::size_t> id_;  ///< spectrum index aligned with mz_
};

}  // namespace msdata
