#include "msdata/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/pair_sort.hpp"
#include "core/ragged_sort.hpp"

namespace msdata {

namespace {

/// Flattens per-spectrum intensities into a CSR ragged buffer.
struct Flattened {
    std::vector<float> values;
    std::vector<std::uint64_t> offsets;
};

Flattened flatten_intensities(const SpectraSet& set) {
    Flattened f;
    f.offsets.reserve(set.size() + 1);
    f.offsets.push_back(0);
    f.values.reserve(set.total_peaks());
    for (const Spectrum& s : set.spectra) {
        for (const Peak& p : s.peaks) f.values.push_back(p.intensity);
        f.offsets.push_back(f.values.size());
    }
    return f;
}

}  // namespace

PipelineStats sort_spectra_by_intensity(simt::Device& device, SpectraSet& set) {
    PipelineStats stats;
    stats.peaks_in = set.total_peaks();
    stats.peaks_out = stats.peaks_in;
    if (set.size() == 0) return stats;

    // Whole peaks sort on the device: intensities are the keys, m/z values
    // ride along through the key-value array sort.
    std::vector<float> keys;
    std::vector<float> vals;
    std::vector<std::uint64_t> offsets;
    keys.reserve(set.total_peaks());
    vals.reserve(set.total_peaks());
    offsets.reserve(set.size() + 1);
    offsets.push_back(0);
    for (const Spectrum& s : set.spectra) {
        for (const Peak& p : s.peaks) {
            keys.push_back(p.intensity);
            vals.push_back(p.mz);
        }
        offsets.push_back(keys.size());
    }

    stats.sort = gas::gpu_ragged_pair_sort(device, keys, vals, offsets);

    for (std::size_t i = 0; i < set.size(); ++i) {
        Spectrum& s = set.spectra[i];
        const auto begin = offsets[i];
        for (std::size_t k = 0; k < s.peaks.size(); ++k) {
            s.peaks[k] = Peak{vals[begin + k], keys[begin + k]};
        }
        if (!std::is_sorted(s.peaks.begin(), s.peaks.end(),
                            [](const Peak& a, const Peak& b) {
                                return a.intensity < b.intensity;
                            })) {
            throw std::logic_error("sort_spectra_by_intensity: device sort not ascending");
        }
    }
    return stats;
}

PipelineStats reduce_spectra(simt::Device& device, SpectraSet& set, double keep_fraction) {
    if (!(keep_fraction > 0.0) || keep_fraction > 1.0) {
        throw std::invalid_argument("reduce_spectra: keep_fraction must be in (0, 1]");
    }
    PipelineStats stats;
    stats.peaks_in = set.total_peaks();
    if (set.size() == 0) return stats;

    Flattened f = flatten_intensities(set);
    stats.sort = gas::gpu_ragged_sort(device, f.values, f.offsets);

    for (std::size_t i = 0; i < set.size(); ++i) {
        Spectrum& s = set.spectra[i];
        const std::size_t n = s.peaks.size();
        if (n == 0) continue;
        const auto keep = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::llround(keep_fraction * static_cast<double>(n))));
        // Sorted ascending: the threshold is the (n - keep)-th intensity.
        const float threshold = f.values[f.offsets[i] + (n - keep)];
        std::vector<Peak> kept;
        kept.reserve(keep);
        for (const Peak& p : s.peaks) {
            // >= threshold keeps at least `keep` peaks; ties may keep more,
            // like MS-REDUCE's quantile binning.
            if (p.intensity >= threshold) kept.push_back(p);
        }
        s.peaks = std::move(kept);
    }
    stats.peaks_out = set.total_peaks();
    return stats;
}

}  // namespace msdata
