#include "msdata/quality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/ragged_sort.hpp"

namespace msdata {

namespace {

/// Index of quantile q in an n-element sorted array (nearest-rank).
std::size_t quantile_index(std::size_t n, double q) {
    const auto idx = static_cast<std::size_t>(std::llround(q * static_cast<double>(n - 1)));
    return std::min(idx, n - 1);
}

}  // namespace

std::vector<SpectrumQuality> compute_quality(simt::Device& device, const SpectraSet& set) {
    std::vector<SpectrumQuality> out(set.size());
    if (set.size() == 0) return out;

    // Flatten intensities and sort every spectrum's row on the device.
    std::vector<float> values;
    std::vector<std::uint64_t> offsets;
    values.reserve(set.total_peaks());
    offsets.reserve(set.size() + 1);
    offsets.push_back(0);
    for (const Spectrum& s : set.spectra) {
        for (const Peak& p : s.peaks) values.push_back(p.intensity);
        offsets.push_back(values.size());
    }
    gas::gpu_ragged_sort(device, values, offsets);

    constexpr double kTiny = std::numeric_limits<float>::min();
    for (std::size_t i = 0; i < set.size(); ++i) {
        SpectrumQuality& q = out[i];
        const std::size_t begin = offsets[i];
        const std::size_t n = offsets[i + 1] - begin;
        q.peak_count = n;
        if (n == 0) continue;
        const std::span<const float> row(values.data() + begin, n);

        for (float v : row) q.total_ion_current += v;
        q.base_peak = row[n - 1];  // sorted ascending
        q.median_intensity = row[quantile_index(n, 0.5)];
        q.p05 = row[quantile_index(n, 0.05)];
        q.p95 = row[quantile_index(n, 0.95)];
        q.dynamic_range = static_cast<double>(q.p95) / std::max<double>(q.p05, kTiny);
        q.signal_to_noise =
            static_cast<double>(q.base_peak) / std::max<double>(q.median_intensity, kTiny);
    }
    return out;
}

std::size_t filter_by_quality(simt::Device& device, SpectraSet& set, double min_snr,
                              std::size_t min_peaks) {
    const auto quality = compute_quality(device, set);
    const std::size_t before = set.size();
    std::vector<Spectrum> kept;
    kept.reserve(before);
    for (std::size_t i = 0; i < before; ++i) {
        if (quality[i].signal_to_noise >= min_snr && quality[i].peak_count >= min_peaks) {
            kept.push_back(std::move(set.spectra[i]));
        }
    }
    set.spectra = std::move(kept);
    return before - set.size();
}

}  // namespace msdata
