#include "msdata/mgf_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace msdata {

void write_mgf(std::ostream& os, const SpectraSet& set) {
    // 9 significant digits round-trip binary32 exactly enough for re-analysis.
    os << std::setprecision(9);
    for (const Spectrum& s : set.spectra) {
        os << "BEGIN IONS\n";
        os << "TITLE=" << s.title << '\n';
        os << "PEPMASS=" << s.precursor_mz << '\n';
        os << "CHARGE=" << s.charge << "+\n";
        for (const Peak& p : s.peaks) {
            os << p.mz << ' ' << p.intensity << '\n';
        }
        os << "END IONS\n";
    }
}

void write_mgf_file(const std::string& path, const SpectraSet& set) {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("write_mgf_file: cannot open " + path);
    write_mgf(f, set);
}

SpectraSet read_mgf(std::istream& is) {
    SpectraSet set;
    std::string line;
    Spectrum current;
    bool in_ions = false;

    auto parse_peak = [&](const std::string& l) {
        std::istringstream ss(l);
        Peak p;
        if (!(ss >> p.mz >> p.intensity)) {
            throw std::runtime_error("read_mgf: malformed peak line: " + l);
        }
        current.peaks.push_back(p);
    };

    while (std::getline(is, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty() || line[0] == '#') continue;
        if (line == "BEGIN IONS") {
            if (in_ions) throw std::runtime_error("read_mgf: nested BEGIN IONS");
            in_ions = true;
            current = Spectrum{};
            continue;
        }
        if (line == "END IONS") {
            if (!in_ions) throw std::runtime_error("read_mgf: END IONS without BEGIN");
            in_ions = false;
            set.spectra.push_back(std::move(current));
            continue;
        }
        if (!in_ions) continue;  // headers outside spectra are ignored
        if (line.rfind("TITLE=", 0) == 0) {
            current.title = line.substr(6);
        } else if (line.rfind("PEPMASS=", 0) == 0) {
            current.precursor_mz = std::stod(line.substr(8));
        } else if (line.rfind("CHARGE=", 0) == 0) {
            std::string v = line.substr(7);
            if (!v.empty() && (v.back() == '+' || v.back() == '-')) v.pop_back();
            current.charge = std::stoi(v);
        } else if (line.find('=') == std::string::npos) {
            parse_peak(line);
        }  // unknown KEY=... lines are ignored
    }
    if (in_ions) throw std::runtime_error("read_mgf: unterminated spectrum at EOF");
    return set;
}

SpectraSet read_mgf_file(const std::string& path) {
    std::ifstream f(path);
    if (!f) throw std::runtime_error("read_mgf_file: cannot open " + path);
    return read_mgf(f);
}

}  // namespace msdata
