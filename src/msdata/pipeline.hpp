#pragma once

#include "core/sort_stats.hpp"
#include "msdata/spectrum.hpp"
#include "simt/device.hpp"

namespace msdata {

/// Result of one GPU-backed pipeline step.
struct PipelineStats {
    gas::SortStats sort;        ///< cost of the underlying ragged array sort
    std::size_t peaks_in = 0;
    std::size_t peaks_out = 0;
};

/// Sorts every spectrum's peaks by intensity (ascending), using the ragged
/// GPU array sort on the intensity arrays and a host-side stable reorder of
/// the (mz, intensity) pairs.  This is the preprocessing step the paper's
/// introduction motivates: "majority of the algorithms dealing with such
/// datasets require these spectra to be sorted ... with respect to
/// intensities".
PipelineStats sort_spectra_by_intensity(simt::Device& device, SpectraSet& set);

/// MS-REDUCE-style data reduction (Awan & Saeed 2016, the companion paper):
/// per spectrum, keep only the `keep_fraction` most intense peaks.  The
/// intensity threshold per spectrum comes from the GPU-sorted intensity
/// array (quantile lookup); filtering preserves m/z scan order.
PipelineStats reduce_spectra(simt::Device& device, SpectraSet& set, double keep_fraction);

}  // namespace msdata
