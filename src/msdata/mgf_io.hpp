#pragma once

#include <iosfwd>
#include <string>

#include "msdata/spectrum.hpp"

namespace msdata {

/// Minimal Mascot Generic Format (MGF) writer/reader — the plain-text
/// interchange format ubiquitous in proteomics.  Supports BEGIN/END IONS,
/// TITLE, PEPMASS, CHARGE and peak lines ("mz intensity").
void write_mgf(std::ostream& os, const SpectraSet& set);
void write_mgf_file(const std::string& path, const SpectraSet& set);

/// Parses an MGF stream.  Throws std::runtime_error on malformed input
/// (unterminated spectrum, non-numeric peak line).
[[nodiscard]] SpectraSet read_mgf(std::istream& is);
[[nodiscard]] SpectraSet read_mgf_file(const std::string& path);

}  // namespace msdata
