#pragma once

#include <vector>

#include "msdata/spectrum.hpp"
#include "simt/device.hpp"

namespace msdata {

/// Per-spectrum quality metrics.  Every quantile-based field requires the
/// intensity array in sorted order — the paper's motivating preprocessing —
/// so the batch API sorts all spectra on the device first (one ragged
/// GPU-ArraySort) and then reads the quantiles off the sorted arrays.
struct SpectrumQuality {
    double total_ion_current = 0.0;  ///< sum of intensities (TIC)
    float base_peak = 0.0f;          ///< strongest intensity
    float median_intensity = 0.0f;   ///< p50 — a robust noise-floor estimate
    float p05 = 0.0f;                ///< 5th percentile intensity
    float p95 = 0.0f;                ///< 95th percentile intensity
    double dynamic_range = 0.0;      ///< p95 / max(p05, denorm)
    double signal_to_noise = 0.0;    ///< base_peak / max(median, denorm)
    std::size_t peak_count = 0;
};

/// Computes quality metrics for every spectrum.  One device-side ragged sort
/// of all intensity arrays feeds every quantile; TIC and base peak fall out
/// of the same sorted rows.  Does not modify the spectra.
[[nodiscard]] std::vector<SpectrumQuality> compute_quality(simt::Device& device,
                                                           const SpectraSet& set);

/// Filters a spectra set in place, keeping spectra whose signal-to-noise is
/// at least `min_snr` and which carry at least `min_peaks` peaks.  Returns
/// the number of spectra removed.
std::size_t filter_by_quality(simt::Device& device, SpectraSet& set, double min_snr,
                              std::size_t min_peaks);

}  // namespace msdata
