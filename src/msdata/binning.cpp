#include "msdata/binning.hpp"

#include <cmath>
#include <stdexcept>

namespace msdata {

std::size_t bin_count(const BinningOptions& opts) {
    if (!(opts.bin_width > 0.0f) || !(opts.max_mz > opts.min_mz)) {
        throw std::invalid_argument("binning: need bin_width > 0 and max_mz > min_mz");
    }
    return static_cast<std::size_t>(
               std::ceil((opts.max_mz - opts.min_mz) / opts.bin_width));
}

std::vector<float> bin_spectrum(const Spectrum& s, const BinningOptions& opts) {
    std::vector<float> bins(bin_count(opts), 0.0f);
    for (const Peak& p : s.peaks) {
        if (p.mz < opts.min_mz || p.mz >= opts.max_mz) continue;
        const auto b = static_cast<std::size_t>((p.mz - opts.min_mz) / opts.bin_width);
        bins[std::min(b, bins.size() - 1)] += p.intensity;
    }
    return bins;
}

double cosine_similarity(const std::vector<float>& a, const std::vector<float>& b) {
    if (a.size() != b.size()) {
        throw std::invalid_argument("cosine_similarity: dimension mismatch");
    }
    double dot = 0.0;
    double na = 0.0;
    double nb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        dot += static_cast<double>(a[i]) * b[i];
        na += static_cast<double>(a[i]) * a[i];
        nb += static_cast<double>(b[i]) * b[i];
    }
    if (na == 0.0 || nb == 0.0) return 0.0;
    return dot / (std::sqrt(na) * std::sqrt(nb));
}

std::vector<double> search_similarity(const SpectraSet& set, const Spectrum& query,
                                      const BinningOptions& opts) {
    const auto qbins = bin_spectrum(query, opts);
    std::vector<double> scores;
    scores.reserve(set.size());
    for (const Spectrum& s : set.spectra) {
        scores.push_back(cosine_similarity(bin_spectrum(s, opts), qbins));
    }
    return scores;
}

}  // namespace msdata
