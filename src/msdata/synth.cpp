#include "msdata/synth.hpp"

#include <algorithm>
#include <random>

namespace msdata {

SpectraSet generate_spectra(std::size_t count, const SynthOptions& opts) {
    SpectraSet set;
    set.spectra.reserve(count);
    std::mt19937_64 rng(opts.seed);
    std::uniform_int_distribution<std::size_t> peak_count(opts.min_peaks, opts.max_peaks);
    std::uniform_real_distribution<float> mz(opts.min_mz, opts.max_mz);
    std::lognormal_distribution<float> noise_intensity(2.0f, 1.0f);
    std::lognormal_distribution<float> signal_intensity(6.0f, 1.2f);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::uniform_real_distribution<double> precursor(300.0, 1800.0);
    std::uniform_int_distribution<int> charge(1, 4);

    for (std::size_t i = 0; i < count; ++i) {
        Spectrum s;
        s.title = "synth_scan_" + std::to_string(i);
        s.precursor_mz = precursor(rng);
        s.charge = charge(rng);
        const std::size_t n = peak_count(rng);
        s.peaks.reserve(n);
        for (std::size_t k = 0; k < n; ++k) {
            Peak p;
            p.mz = mz(rng);
            p.intensity = coin(rng) < opts.noise_fraction ? noise_intensity(rng)
                                                          : signal_intensity(rng);
            s.peaks.push_back(p);
        }
        // Instruments report peaks in ascending m/z scan order.
        std::sort(s.peaks.begin(), s.peaks.end(),
                  [](const Peak& a, const Peak& b) { return a.mz < b.mz; });
        set.spectra.push_back(std::move(s));
    }
    return set;
}

}  // namespace msdata
