#pragma once

#include <iosfwd>
#include <string>

#include "workload/generators.hpp"

namespace workload {

/// Binary dataset container (.gad — "gpu-arraysort dataset"): a fixed
/// little-endian header (magic "GASD", version, N, n) followed by N*n raw
/// float32 values.  The interchange format of the gas_sortfile tool, and a
/// convenient way to persist generated workloads for repeatable benches.
void write_dataset(std::ostream& os, const Dataset& ds);
void write_dataset_file(const std::string& path, const Dataset& ds);

/// Throws std::runtime_error on bad magic, version, truncation or a header
/// that does not match the payload size.
[[nodiscard]] Dataset read_dataset(std::istream& is);
[[nodiscard]] Dataset read_dataset_file(const std::string& path);

}  // namespace workload
