#include "workload/dataset_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace workload {

namespace {

constexpr std::array<char, 4> kMagic = {'G', 'A', 'S', 'D'};
constexpr std::uint32_t kVersion = 1;

struct Header {
    std::array<char, 4> magic;
    std::uint32_t version;
    std::uint64_t num_arrays;
    std::uint64_t array_size;
};
static_assert(sizeof(Header) == 24);

}  // namespace

void write_dataset(std::ostream& os, const Dataset& ds) {
    Header h{kMagic, kVersion, ds.num_arrays, ds.array_size};
    os.write(reinterpret_cast<const char*>(&h), sizeof(h));
    os.write(reinterpret_cast<const char*>(ds.values.data()),
             static_cast<std::streamsize>(ds.values.size() * sizeof(float)));
    if (!os) throw std::runtime_error("write_dataset: stream failure");
}

void write_dataset_file(const std::string& path, const Dataset& ds) {
    std::ofstream f(path, std::ios::binary);
    if (!f) throw std::runtime_error("write_dataset_file: cannot open " + path);
    write_dataset(f, ds);
}

Dataset read_dataset(std::istream& is) {
    Header h{};
    is.read(reinterpret_cast<char*>(&h), sizeof(h));
    if (!is || is.gcount() != sizeof(h)) {
        throw std::runtime_error("read_dataset: truncated header");
    }
    if (h.magic != kMagic) throw std::runtime_error("read_dataset: bad magic");
    if (h.version != kVersion) {
        throw std::runtime_error("read_dataset: unsupported version " +
                                 std::to_string(h.version));
    }
    Dataset ds;
    ds.num_arrays = h.num_arrays;
    ds.array_size = h.array_size;
    const std::uint64_t count = h.num_arrays * h.array_size;
    if (h.array_size != 0 && count / h.array_size != h.num_arrays) {
        throw std::runtime_error("read_dataset: header size overflow");
    }
    ds.values.resize(count);
    is.read(reinterpret_cast<char*>(ds.values.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
    if (!is || is.gcount() != static_cast<std::streamsize>(count * sizeof(float))) {
        throw std::runtime_error("read_dataset: truncated payload");
    }
    return ds;
}

Dataset read_dataset_file(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    if (!f) throw std::runtime_error("read_dataset_file: cannot open " + path);
    return read_dataset(f);
}

}  // namespace workload
