#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace workload {

/// Shapes of per-array value distributions used by tests and benchmarks.
///
/// `Uniform` reproduces the paper's evaluation datasets: floats drawn
/// uniformly from [0, 2^31 - 1].  The others probe sample-sort's sensitivity
/// to skew, duplication and presortedness (ablation A4).
enum class Distribution {
    Uniform,       ///< paper's dataset: U(0, 2^31 - 1)
    Normal,        ///< N(2^30, 2^28), clamped to >= 0
    Exponential,   ///< heavy left skew
    Sorted,        ///< already ascending
    Reverse,       ///< descending
    NearlySorted,  ///< ascending with ~1% random swaps
    FewDistinct,   ///< only 8 distinct values (duplicate-heavy)
    Constant,      ///< every element identical
    Pareto,        ///< power-law heavy tail (worst case for regular sampling)
    Clustered,     ///< 8 tight Gaussian clusters per array
    ZipfHot,       ///< single-hot-bucket adversary: ~90% of each array is
                   ///< distinct values in one narrow band, placed off the
                   ///< 10%-regular-sampling stride so phase 1's sample sees
                   ///< only the uniform decoys and one bucket swallows the
                   ///< band (worst case for phase-3 lane balance)
};

[[nodiscard]] std::string to_string(Distribution d);
[[nodiscard]] const std::vector<Distribution>& all_distributions();

/// A dataset of `num_arrays` arrays, each `array_size` elements, flattened
/// row-major the way both sorters consume it (array i occupies
/// [i*array_size, (i+1)*array_size)).
struct Dataset {
    std::size_t num_arrays = 0;
    std::size_t array_size = 0;
    std::vector<float> values;  ///< num_arrays * array_size elements

    [[nodiscard]] std::size_t total_elements() const { return num_arrays * array_size; }
    [[nodiscard]] const float* array(std::size_t i) const { return values.data() + i * array_size; }
    [[nodiscard]] float* array(std::size_t i) { return values.data() + i * array_size; }
};

/// Deterministic dataset generator (same seed -> same dataset).
[[nodiscard]] Dataset make_dataset(std::size_t num_arrays, std::size_t array_size,
                                   Distribution dist = Distribution::Uniform,
                                   std::uint64_t seed = 42);

/// Single flat array, convenience for substrate tests.
[[nodiscard]] std::vector<float> make_values(std::size_t count, Distribution dist,
                                             std::uint64_t seed = 42);

/// Ragged dataset support (extension beyond the paper's uniform-n datasets):
/// per-array sizes drawn from [min_size, max_size].
struct RaggedDataset {
    std::vector<std::size_t> offsets;  ///< size num_arrays + 1 (CSR)
    std::vector<float> values;

    [[nodiscard]] std::size_t num_arrays() const {
        return offsets.empty() ? 0 : offsets.size() - 1;
    }
    [[nodiscard]] std::size_t size_of(std::size_t i) const {
        return offsets[i + 1] - offsets[i];
    }
};

[[nodiscard]] RaggedDataset make_ragged_dataset(std::size_t num_arrays, std::size_t min_size,
                                                std::size_t max_size,
                                                Distribution dist = Distribution::Uniform,
                                                std::uint64_t seed = 42);

}  // namespace workload
