#include "workload/generators.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <random>
#include <stdexcept>

namespace workload {

namespace {

constexpr float kUniformMax = 2147483647.0f;  // 2^31 - 1, the paper's range

void fill(std::vector<float>& out, std::size_t begin, std::size_t end, Distribution dist,
          std::mt19937_64& rng) {
    switch (dist) {
        case Distribution::Uniform: {
            std::uniform_real_distribution<float> u(0.0f, kUniformMax);
            for (std::size_t i = begin; i < end; ++i) out[i] = u(rng);
            break;
        }
        case Distribution::Normal: {
            std::normal_distribution<float> n(1073741824.0f, 268435456.0f);
            for (std::size_t i = begin; i < end; ++i) out[i] = std::max(0.0f, n(rng));
            break;
        }
        case Distribution::Exponential: {
            std::exponential_distribution<float> e(1.0f / 1e6f);
            for (std::size_t i = begin; i < end; ++i) out[i] = e(rng);
            break;
        }
        case Distribution::Sorted: {
            std::uniform_real_distribution<float> u(0.0f, kUniformMax);
            for (std::size_t i = begin; i < end; ++i) out[i] = u(rng);
            std::sort(out.begin() + static_cast<std::ptrdiff_t>(begin),
                      out.begin() + static_cast<std::ptrdiff_t>(end));
            break;
        }
        case Distribution::Reverse: {
            std::uniform_real_distribution<float> u(0.0f, kUniformMax);
            for (std::size_t i = begin; i < end; ++i) out[i] = u(rng);
            std::sort(out.begin() + static_cast<std::ptrdiff_t>(begin),
                      out.begin() + static_cast<std::ptrdiff_t>(end), std::greater<>());
            break;
        }
        case Distribution::NearlySorted: {
            std::uniform_real_distribution<float> u(0.0f, kUniformMax);
            for (std::size_t i = begin; i < end; ++i) out[i] = u(rng);
            std::sort(out.begin() + static_cast<std::ptrdiff_t>(begin),
                      out.begin() + static_cast<std::ptrdiff_t>(end));
            const std::size_t n = end - begin;
            const std::size_t swaps = std::max<std::size_t>(1, n / 100);
            std::uniform_int_distribution<std::size_t> pick(0, n - 1);
            for (std::size_t s = 0; s < swaps; ++s) {
                std::swap(out[begin + pick(rng)], out[begin + pick(rng)]);
            }
            break;
        }
        case Distribution::FewDistinct: {
            std::uniform_int_distribution<int> pick(0, 7);
            for (std::size_t i = begin; i < end; ++i) {
                out[i] = static_cast<float>(pick(rng)) * 1e6f;
            }
            break;
        }
        case Distribution::Constant: {
            for (std::size_t i = begin; i < end; ++i) out[i] = 12345.0f;
            break;
        }
        case Distribution::Pareto: {
            // x = scale * (u^{-1/alpha} - 1): a heavy power-law tail that
            // concentrates mass near 0 and throws rare huge outliers.
            std::uniform_real_distribution<float> u(1e-6f, 1.0f);
            for (std::size_t i = begin; i < end; ++i) {
                out[i] = 1000.0f * (std::pow(u(rng), -1.0f / 1.5f) - 1.0f);
            }
            break;
        }
        case Distribution::Clustered: {
            std::uniform_real_distribution<float> center(0.0f, kUniformMax);
            std::normal_distribution<float> jitter(0.0f, kUniformMax / 1e4f);
            std::array<float, 8> centers;
            for (auto& cc : centers) cc = center(rng);
            std::uniform_int_distribution<int> pick(0, 7);
            for (std::size_t i = begin; i < end; ++i) {
                out[i] = std::max(0.0f, centers[static_cast<std::size_t>(pick(rng))] +
                                            jitter(rng));
            }
            break;
        }
        case Distribution::ZipfHot: {
            // Single-hot-bucket adversary for phase 3.  The splitter phase
            // regular-samples array[k * stride] with stride = n / (0.1 n) =
            // 10, so positions = 0 (mod 10) carry full-range uniform decoys
            // and every other position carries a *distinct* value inside a
            // narrow band.  The sample then consists of decoys only, the
            // splitters straddle the band, and ~90% of the array lands in
            // one bucket of one lane.  The band values are distinct (not
            // duplicates) so that bucket really costs quadratic compares.
            std::uniform_real_distribution<float> decoy(0.0f, kUniformMax);
            const float band_lo = 0.40f * kUniformMax;
            const float band_hi = 0.41f * kUniformMax;
            std::uniform_real_distribution<float> band(band_lo, band_hi);
            for (std::size_t i = begin; i < end; ++i) {
                out[i] = (i - begin) % 10 == 0 ? decoy(rng) : band(rng);
            }
            break;
        }
    }
}

}  // namespace

std::string to_string(Distribution d) {
    switch (d) {
        case Distribution::Uniform: return "uniform";
        case Distribution::Normal: return "normal";
        case Distribution::Exponential: return "exponential";
        case Distribution::Sorted: return "sorted";
        case Distribution::Reverse: return "reverse";
        case Distribution::NearlySorted: return "nearly-sorted";
        case Distribution::FewDistinct: return "few-distinct";
        case Distribution::Constant: return "constant";
        case Distribution::Pareto: return "pareto";
        case Distribution::Clustered: return "clustered";
        case Distribution::ZipfHot: return "zipf-hot";
    }
    return "unknown";
}

const std::vector<Distribution>& all_distributions() {
    static const std::vector<Distribution> all = {
        Distribution::Uniform,      Distribution::Normal,      Distribution::Exponential,
        Distribution::Sorted,       Distribution::Reverse,     Distribution::NearlySorted,
        Distribution::FewDistinct,  Distribution::Constant,
        Distribution::Pareto,       Distribution::Clustered,
        Distribution::ZipfHot,
    };
    return all;
}

Dataset make_dataset(std::size_t num_arrays, std::size_t array_size, Distribution dist,
                     std::uint64_t seed) {
    Dataset ds;
    ds.num_arrays = num_arrays;
    ds.array_size = array_size;
    ds.values.resize(num_arrays * array_size);
    std::mt19937_64 rng(seed);
    for (std::size_t a = 0; a < num_arrays; ++a) {
        fill(ds.values, a * array_size, (a + 1) * array_size, dist, rng);
    }
    return ds;
}

std::vector<float> make_values(std::size_t count, Distribution dist, std::uint64_t seed) {
    std::vector<float> v(count);
    std::mt19937_64 rng(seed);
    fill(v, 0, count, dist, rng);
    return v;
}

RaggedDataset make_ragged_dataset(std::size_t num_arrays, std::size_t min_size,
                                  std::size_t max_size, Distribution dist, std::uint64_t seed) {
    if (min_size > max_size) throw std::invalid_argument("make_ragged_dataset: min > max");
    RaggedDataset ds;
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<std::size_t> len(min_size, max_size);
    ds.offsets.resize(num_arrays + 1);
    ds.offsets[0] = 0;
    for (std::size_t a = 0; a < num_arrays; ++a) {
        ds.offsets[a + 1] = ds.offsets[a] + len(rng);
    }
    ds.values.resize(ds.offsets.back());
    for (std::size_t a = 0; a < num_arrays; ++a) {
        fill(ds.values, ds.offsets[a], ds.offsets[a + 1], dist, rng);
    }
    return ds;
}

}  // namespace workload
