#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/pool.hpp"

namespace gas::serve {

/// Latency sample digest.  Samples are kept verbatim (a serving run is
/// thousands of requests, not billions) and percentiles use nearest-rank on
/// a sorted copy, so p50/p95/p99 are exact.
class LatencyDigest {
  public:
    void record(double ms) {
        samples_.push_back(ms);
        sum_ += ms;
        if (ms > max_) max_ = ms;
    }

    [[nodiscard]] std::size_t count() const { return samples_.size(); }
    [[nodiscard]] double mean() const {
        return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
    }
    [[nodiscard]] double max() const { return max_; }
    /// Nearest-rank percentile, q in (0, 100]; 0 when no samples.
    [[nodiscard]] double percentile(double q) const;

  private:
    std::vector<double> samples_;
    double sum_ = 0.0;
    double max_ = 0.0;
};

/// Flattened percentile view of one digest (for reports and JSON).
struct LatencySummary {
    std::size_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

[[nodiscard]] LatencySummary summarize(const LatencyDigest& d);

/// Per-device slice of a fleet server's stats (one entry per shard, in
/// device order, including the N=1 single-device degenerate fleet).
struct DeviceBreakdown {
    std::string name;           ///< "dev<i>"
    bool quarantined = false;   ///< device lost; no longer routed to
    std::uint64_t routed = 0;        ///< requests placed here at submit
    std::uint64_t completed = 0;     ///< requests retired on this device
    std::uint64_t batches = 0;       ///< fused batches it executed
    std::uint64_t fused_arrays = 0;
    std::uint64_t steals_in = 0;     ///< requests this shard stole when idle
    std::uint64_t steals_out = 0;    ///< requests stolen from its queue
    std::uint64_t reroutes_in = 0;   ///< requests re-homed here after a loss
    std::uint64_t reroutes_out = 0;  ///< requests it lost when quarantined
    double modeled_kernel_ms = 0.0;
    double modeled_overlap_ms = 0.0;    ///< this device's pipeline makespan
    double compute_utilization = 0.0;   ///< of its own makespan
    std::size_t queue_depth = 0;        ///< at the moment stats() was taken
    /// EWMA of the shard's queue depth, sampled at every enqueue and batch
    /// take (alpha 0.2): the smoothed backlog signal dashboards trend and
    /// the fleet router's rebalancing reads, immune to the instant-depth
    /// sampling noise of queue_depth.
    double queue_depth_ewma = 0.0;
    /// gas::health state machine position ("healthy" / "degraded" /
    /// "quarantined" / "probation").  With health off this mirrors the
    /// quarantined flag: "quarantined" or "healthy".
    std::string health_state = "healthy";
};

/// Counters of the gas::health closed loop (the "health" JSON block).  All
/// zero — and `enabled` false — when ServerConfig::health.enabled is off.
struct HealthStats {
    bool enabled = false;

    // State machine transitions (summed over all shards).
    std::uint64_t demotions = 0;            ///< Healthy -> Degraded
    std::uint64_t quarantines = 0;          ///< any -> Quarantined
    std::uint64_t probations = 0;           ///< Quarantined -> Probation
    std::uint64_t readmissions = 0;         ///< Probation -> Healthy
    std::uint64_t degraded_recoveries = 0;  ///< Degraded -> Healthy

    // Probe sorts run against quarantined devices.
    std::uint64_t probes_run = 0;
    std::uint64_t probes_passed = 0;
    std::uint64_t probes_failed = 0;

    // Watchdog: shards whose heartbeat stalled past the deadline (async), or
    // hung launches aborted by the hang handler (manual pump).
    std::uint64_t hangs_detected = 0;

    // Straggler hedging: re-submissions of stuck batches on healthy shards.
    std::uint64_t hedges_launched = 0;      ///< hedge clones enqueued
    std::uint64_t hedge_wins = 0;           ///< hedge resolved the request first
    std::uint64_t hedge_primary_wins = 0;   ///< primary beat its hedge
    std::uint64_t hedge_mismatches = 0;     ///< loser's bytes != winner's (must be 0)

    // Overload shedding (typed Status::Shed responses; never silent loss).
    std::uint64_t shed_overflow = 0;   ///< queue-full oldest-first drops
    std::uint64_t shed_brownout = 0;   ///< low-priority drops at brownout L3
    std::uint64_t shed_sojourn = 0;    ///< CoDel-style queue-sojourn drops (async)

    // Brownout ladder (0 = off .. 3 = full shedding).
    int brownout_level = 0;
    std::uint64_t brownout_escalations = 0;
    std::uint64_t brownout_deescalations = 0;
    std::uint64_t verify_skipped_batches = 0;  ///< L1: response verification disabled

    [[nodiscard]] std::uint64_t shed_total() const {
        return shed_overflow + shed_brownout + shed_sojourn;
    }
};

/// Full observability surface of one gas::serve::Server.
struct ServerStats {
    // Admission.
    std::uint64_t submitted = 0;   ///< submit() calls
    std::uint64_t accepted = 0;    ///< admitted into the queue
    std::uint64_t rejected = 0;    ///< queue full / stopped / zero capacity
    std::uint64_t timed_out = 0;   ///< deadline expired (at submit or queued)
    std::uint64_t cancelled = 0;
    std::uint64_t completed = 0;   ///< Status::Ok responses
    std::uint64_t failed = 0;
    std::uint64_t shed = 0;        ///< dropped by overload protection (typed)
    std::uint64_t cpu_fallbacks = 0;  ///< served by the host degradation path

    // Micro-batching.
    std::uint64_t batches = 0;           ///< fused device batches executed
    std::uint64_t batched_requests = 0;  ///< requests those batches carried
    std::uint64_t fused_arrays = 0;      ///< arrays across all fused batches

    // Queue.
    std::size_t queue_depth = 0;  ///< at the moment stats() was taken
    std::size_t queue_peak = 0;

    // Resilience (gas::resilient wiring; all zero on a fault-free run).
    std::uint64_t retries = 0;          ///< fused-batch re-attempts after transient errors
    std::uint64_t alloc_retries = 0;    ///< pool acquisitions retried after a trim
    std::uint64_t quarantined = 0;      ///< requests isolated to solo host re-sorts
    std::uint64_t verify_failures = 0;  ///< requests whose response verification failed
    double retry_backoff_ms = 0.0;      ///< modeled backoff accrued by all retries

    // Fleet (multi-device routing; devices.size() == 1 for a single device).
    std::uint64_t steals = 0;               ///< requests moved by work stealing
    std::uint64_t reroutes = 0;             ///< requests re-homed after device loss
    std::uint64_t devices_quarantined = 0;  ///< devices lost so far
    std::vector<DeviceBreakdown> devices;   ///< per-shard slice, device order
    /// Current KeyRange routing bands (per-device upper key bounds), empty
    /// unless the policy is KeyRange and the controller has recomputed them
    /// from the fleet-level aggregate sketch.
    std::vector<double> key_bands;

    // Graph launches (Device::submit telemetry summed over the fleet).  With
    // Options::graph_launch on (the default) every fused batch executes as
    // one submitted work graph — phase chain plus dispatch nodes — so
    // `graphs` tracks batches + quarantined solo re-sorts, and
    // `device_enqueued` counts the nodes emitted by decision nodes (e.g.
    // phase-3 dispatch) rather than recorded statically.
    std::uint64_t graphs = 0;                 ///< Device::submit calls
    std::uint64_t graph_nodes = 0;            ///< nodes executed (kernel + host)
    std::uint64_t graph_kernel_nodes = 0;
    std::uint64_t graph_host_nodes = 0;
    std::uint64_t graph_device_enqueued = 0;  ///< nodes enqueued during execution
    std::uint64_t graph_pruned = 0;           ///< degenerate work skipped in-graph
    // Graph reuse cache (core/sort_graph.hpp): consecutive uniform batches
    // with an identical fingerprint (device span, geometry, effective
    // options) resubmit one held graph instead of rebuilding it.
    std::uint64_t graph_cache_hits = 0;       ///< batches served by a held graph
    std::uint64_t graph_cache_misses = 0;     ///< batches that (re)built one
    std::uint64_t graph_cache_evictions = 0;  ///< rebuilds that replaced a held graph
    [[nodiscard]] double graph_cache_hit_rate() const {
        const auto total = graph_cache_hits + graph_cache_misses;
        return total > 0 ? static_cast<double>(graph_cache_hits) /
                               static_cast<double>(total)
                         : 0.0;
    }

    // Modeled device cost (sums over batches).
    double modeled_kernel_ms = 0.0;
    double modeled_h2d_ms = 0.0;
    double modeled_d2h_ms = 0.0;
    // Multi-stream pipeline model (simt::Timeline over every batch).  With a
    // fleet, devices run concurrently: overlap is the max per-device
    // makespan, serial the sum of fully-serialized per-device costs, and the
    // engine utilizations are fleet-wide (busy / (overlap x devices)).
    double modeled_overlap_ms = 0.0;
    double modeled_serial_ms = 0.0;
    double h2d_busy_ms = 0.0;
    double compute_busy_ms = 0.0;
    double d2h_busy_ms = 0.0;
    double h2d_utilization = 0.0;
    double compute_utilization = 0.0;
    double d2h_utilization = 0.0;

    // Adaptive tuning (gas::tune::Controller wiring; all zero with
    // auto_tune off).  One cell per (regime, candidate) pair the controller
    // has met: the planner's predicted cost, the EWMA of observed modeled
    // cost, and whether the cell currently holds its regime's incumbency.
    struct TuneCell {
        std::string regime;
        std::string candidate;
        double predicted = 0.0;      ///< modeled cycles/element (planner seed)
        double observed = 0.0;       ///< EWMA of observed cycles/element
        std::uint64_t observations = 0;
        bool incumbent = false;
    };
    bool tune_enabled = false;            ///< ServerConfig::auto_tune
    std::uint64_t tune_decisions = 0;     ///< controller choices with a sketch
    std::uint64_t tune_plan_switches = 0; ///< incumbent changes past hysteresis
    std::uint64_t tuned_batches = 0;      ///< batches run under a non-default plan
    double tune_sketch_ms = 0.0;          ///< modeled sketch cost accrued at submit
    std::vector<TuneCell> tune_cells;     ///< learned cost cells, sorted by key

    double wall_service_ms = 0.0;  ///< host wall time spent executing batches

    /// Closed-loop health subsystem counters (gas::health wiring).
    HealthStats health;

    BufferPool::Stats pool;

    // Per-request latency distributions.
    LatencySummary queue_wait_ms;  ///< submit -> service start
    LatencySummary wall_ms;        ///< submit -> response (wall)
    LatencySummary modeled_ms;     ///< request's share of modeled device time

    [[nodiscard]] double batch_occupancy() const {
        return batches > 0
                   ? static_cast<double>(batched_requests) / static_cast<double>(batches)
                   : 0.0;
    }
    /// Requests per second over the modeled pipeline makespan.
    [[nodiscard]] double modeled_throughput_rps() const {
        return modeled_overlap_ms > 0.0
                   ? static_cast<double>(completed) / modeled_overlap_ms * 1e3
                   : 0.0;
    }
    [[nodiscard]] double overlap_speedup() const {
        return modeled_overlap_ms > 0.0 ? modeled_serial_ms / modeled_overlap_ms : 1.0;
    }

    /// One JSON object, schema stable for dashboards and the bench gates.
    [[nodiscard]] std::string to_json() const;
};

}  // namespace gas::serve
