#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/pool.hpp"

namespace gas::serve {

/// Latency sample digest.  Samples are kept verbatim (a serving run is
/// thousands of requests, not billions) and percentiles use nearest-rank on
/// a sorted copy, so p50/p95/p99 are exact.
class LatencyDigest {
  public:
    void record(double ms) {
        samples_.push_back(ms);
        sum_ += ms;
        if (ms > max_) max_ = ms;
    }

    [[nodiscard]] std::size_t count() const { return samples_.size(); }
    [[nodiscard]] double mean() const {
        return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
    }
    [[nodiscard]] double max() const { return max_; }
    /// Nearest-rank percentile, q in (0, 100]; 0 when no samples.
    [[nodiscard]] double percentile(double q) const;

  private:
    std::vector<double> samples_;
    double sum_ = 0.0;
    double max_ = 0.0;
};

/// Flattened percentile view of one digest (for reports and JSON).
struct LatencySummary {
    std::size_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

[[nodiscard]] LatencySummary summarize(const LatencyDigest& d);

/// Per-device slice of a fleet server's stats (one entry per shard, in
/// device order, including the N=1 single-device degenerate fleet).
struct DeviceBreakdown {
    std::string name;           ///< "dev<i>"
    bool quarantined = false;   ///< device lost; no longer routed to
    std::uint64_t routed = 0;        ///< requests placed here at submit
    std::uint64_t completed = 0;     ///< requests retired on this device
    std::uint64_t batches = 0;       ///< fused batches it executed
    std::uint64_t fused_arrays = 0;
    std::uint64_t steals_in = 0;     ///< requests this shard stole when idle
    std::uint64_t steals_out = 0;    ///< requests stolen from its queue
    std::uint64_t reroutes_in = 0;   ///< requests re-homed here after a loss
    std::uint64_t reroutes_out = 0;  ///< requests it lost when quarantined
    double modeled_kernel_ms = 0.0;
    double modeled_overlap_ms = 0.0;    ///< this device's pipeline makespan
    double compute_utilization = 0.0;   ///< of its own makespan
    std::size_t queue_depth = 0;        ///< at the moment stats() was taken
};

/// Full observability surface of one gas::serve::Server.
struct ServerStats {
    // Admission.
    std::uint64_t submitted = 0;   ///< submit() calls
    std::uint64_t accepted = 0;    ///< admitted into the queue
    std::uint64_t rejected = 0;    ///< queue full / stopped / zero capacity
    std::uint64_t timed_out = 0;   ///< deadline expired (at submit or queued)
    std::uint64_t cancelled = 0;
    std::uint64_t completed = 0;   ///< Status::Ok responses
    std::uint64_t failed = 0;
    std::uint64_t cpu_fallbacks = 0;  ///< served by the host degradation path

    // Micro-batching.
    std::uint64_t batches = 0;           ///< fused device batches executed
    std::uint64_t batched_requests = 0;  ///< requests those batches carried
    std::uint64_t fused_arrays = 0;      ///< arrays across all fused batches

    // Queue.
    std::size_t queue_depth = 0;  ///< at the moment stats() was taken
    std::size_t queue_peak = 0;

    // Resilience (gas::resilient wiring; all zero on a fault-free run).
    std::uint64_t retries = 0;          ///< fused-batch re-attempts after transient errors
    std::uint64_t alloc_retries = 0;    ///< pool acquisitions retried after a trim
    std::uint64_t quarantined = 0;      ///< requests isolated to solo host re-sorts
    std::uint64_t verify_failures = 0;  ///< requests whose response verification failed
    double retry_backoff_ms = 0.0;      ///< modeled backoff accrued by all retries

    // Fleet (multi-device routing; devices.size() == 1 for a single device).
    std::uint64_t steals = 0;               ///< requests moved by work stealing
    std::uint64_t reroutes = 0;             ///< requests re-homed after device loss
    std::uint64_t devices_quarantined = 0;  ///< devices lost so far
    std::vector<DeviceBreakdown> devices;   ///< per-shard slice, device order

    // Graph launches (Device::submit telemetry summed over the fleet).  With
    // Options::graph_launch on (the default) every fused batch executes as
    // one submitted work graph — phase chain plus dispatch nodes — so
    // `graphs` tracks batches + quarantined solo re-sorts, and
    // `device_enqueued` counts the nodes emitted by decision nodes (e.g.
    // phase-3 dispatch) rather than recorded statically.
    std::uint64_t graphs = 0;                 ///< Device::submit calls
    std::uint64_t graph_nodes = 0;            ///< nodes executed (kernel + host)
    std::uint64_t graph_kernel_nodes = 0;
    std::uint64_t graph_host_nodes = 0;
    std::uint64_t graph_device_enqueued = 0;  ///< nodes enqueued during execution
    std::uint64_t graph_pruned = 0;           ///< degenerate work skipped in-graph

    // Modeled device cost (sums over batches).
    double modeled_kernel_ms = 0.0;
    double modeled_h2d_ms = 0.0;
    double modeled_d2h_ms = 0.0;
    // Multi-stream pipeline model (simt::Timeline over every batch).  With a
    // fleet, devices run concurrently: overlap is the max per-device
    // makespan, serial the sum of fully-serialized per-device costs, and the
    // engine utilizations are fleet-wide (busy / (overlap x devices)).
    double modeled_overlap_ms = 0.0;
    double modeled_serial_ms = 0.0;
    double h2d_busy_ms = 0.0;
    double compute_busy_ms = 0.0;
    double d2h_busy_ms = 0.0;
    double h2d_utilization = 0.0;
    double compute_utilization = 0.0;
    double d2h_utilization = 0.0;

    double wall_service_ms = 0.0;  ///< host wall time spent executing batches

    BufferPool::Stats pool;

    // Per-request latency distributions.
    LatencySummary queue_wait_ms;  ///< submit -> service start
    LatencySummary wall_ms;        ///< submit -> response (wall)
    LatencySummary modeled_ms;     ///< request's share of modeled device time

    [[nodiscard]] double batch_occupancy() const {
        return batches > 0
                   ? static_cast<double>(batched_requests) / static_cast<double>(batches)
                   : 0.0;
    }
    /// Requests per second over the modeled pipeline makespan.
    [[nodiscard]] double modeled_throughput_rps() const {
        return modeled_overlap_ms > 0.0
                   ? static_cast<double>(completed) / modeled_overlap_ms * 1e3
                   : 0.0;
    }
    [[nodiscard]] double overlap_speedup() const {
        return modeled_overlap_ms > 0.0 ? modeled_serial_ms / modeled_overlap_ms : 1.0;
    }

    /// One JSON object, schema stable for dashboards and the bench gates.
    [[nodiscard]] std::string to_json() const;
};

}  // namespace gas::serve
