#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace gas::serve {

double LatencyDigest::percentile(double q) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    const double rank = std::ceil(q / 100.0 * static_cast<double>(sorted.size()));
    const std::size_t idx =
        std::min(sorted.size() - 1,
                 static_cast<std::size_t>(std::max(rank - 1.0, 0.0)));
    return sorted[idx];
}

LatencySummary summarize(const LatencyDigest& d) {
    return {d.count(),         d.mean(),          d.percentile(50.0),
            d.percentile(95.0), d.percentile(99.0), d.max()};
}

namespace {

void append(std::string& out, const char* fmt, ...) {
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

void append_latency(std::string& out, const char* name, const LatencySummary& s,
                    bool last = false) {
    append(out,
           "    \"%s\": {\"count\": %zu, \"mean\": %.6f, \"p50\": %.6f, \"p95\": %.6f, "
           "\"p99\": %.6f, \"max\": %.6f}%s\n",
           name, s.count, s.mean, s.p50, s.p95, s.p99, s.max, last ? "" : ",");
}

}  // namespace

std::string ServerStats::to_json() const {
    std::string j = "{\n";
    append(j, "  \"requests\": {\n");
    append(j,
           "    \"submitted\": %llu, \"accepted\": %llu, \"rejected\": %llu, "
           "\"timed_out\": %llu, \"cancelled\": %llu, \"completed\": %llu, "
           "\"failed\": %llu, \"shed\": %llu, \"cpu_fallbacks\": %llu\n",
           static_cast<unsigned long long>(submitted),
           static_cast<unsigned long long>(accepted),
           static_cast<unsigned long long>(rejected),
           static_cast<unsigned long long>(timed_out),
           static_cast<unsigned long long>(cancelled),
           static_cast<unsigned long long>(completed),
           static_cast<unsigned long long>(failed),
           static_cast<unsigned long long>(shed),
           static_cast<unsigned long long>(cpu_fallbacks));
    append(j, "  },\n");
    append(j, "  \"batching\": {\n");
    append(j,
           "    \"batches\": %llu, \"batched_requests\": %llu, \"fused_arrays\": %llu, "
           "\"occupancy\": %.4f\n",
           static_cast<unsigned long long>(batches),
           static_cast<unsigned long long>(batched_requests),
           static_cast<unsigned long long>(fused_arrays), batch_occupancy());
    append(j, "  },\n");
    append(j, "  \"queue\": {\"depth\": %zu, \"peak\": %zu},\n", queue_depth, queue_peak);
    append(j, "  \"resilience\": {\n");
    append(j,
           "    \"retries\": %llu, \"alloc_retries\": %llu, \"quarantined\": %llu, "
           "\"verify_failures\": %llu, \"retry_backoff_ms\": %.6f\n",
           static_cast<unsigned long long>(retries),
           static_cast<unsigned long long>(alloc_retries),
           static_cast<unsigned long long>(quarantined),
           static_cast<unsigned long long>(verify_failures), retry_backoff_ms);
    append(j, "  },\n");
    append(j, "  \"fleet\": {\n");
    append(j,
           "    \"devices\": %zu, \"steals\": %llu, \"reroutes\": %llu, "
           "\"devices_quarantined\": %llu,\n",
           devices.size(), static_cast<unsigned long long>(steals),
           static_cast<unsigned long long>(reroutes),
           static_cast<unsigned long long>(devices_quarantined));
    append(j, "    \"key_bands\": [");
    for (std::size_t i = 0; i < key_bands.size(); ++i) {
        append(j, "%s%.1f", i > 0 ? ", " : "", key_bands[i]);
    }
    append(j, "],\n");
    append(j, "    \"per_device\": [\n");
    for (std::size_t i = 0; i < devices.size(); ++i) {
        const DeviceBreakdown& d = devices[i];
        append(j,
               "      {\"name\": \"%s\", \"quarantined\": %s, \"routed\": %llu, "
               "\"completed\": %llu, \"batches\": %llu, \"fused_arrays\": %llu,\n",
               d.name.c_str(), d.quarantined ? "true" : "false",
               static_cast<unsigned long long>(d.routed),
               static_cast<unsigned long long>(d.completed),
               static_cast<unsigned long long>(d.batches),
               static_cast<unsigned long long>(d.fused_arrays));
        append(j,
               "       \"steals_in\": %llu, \"steals_out\": %llu, \"reroutes_in\": %llu, "
               "\"reroutes_out\": %llu, \"queue_depth\": %zu,\n",
               static_cast<unsigned long long>(d.steals_in),
               static_cast<unsigned long long>(d.steals_out),
               static_cast<unsigned long long>(d.reroutes_in),
               static_cast<unsigned long long>(d.reroutes_out), d.queue_depth);
        append(j, "       \"queue_depth_ewma\": %.4f, \"health_state\": \"%s\",\n",
               d.queue_depth_ewma, d.health_state.c_str());
        append(j,
               "       \"kernel_ms\": %.6f, \"overlap_ms\": %.6f, "
               "\"compute_utilization\": %.4f}%s\n",
               d.modeled_kernel_ms, d.modeled_overlap_ms, d.compute_utilization,
               i + 1 < devices.size() ? "," : "");
    }
    append(j, "    ]\n");
    append(j, "  },\n");
    append(j, "  \"graph\": {\n");
    append(j,
           "    \"graphs\": %llu, \"nodes\": %llu, \"kernel_nodes\": %llu, "
           "\"host_nodes\": %llu, \"device_enqueued\": %llu, \"pruned\": %llu,\n",
           static_cast<unsigned long long>(graphs),
           static_cast<unsigned long long>(graph_nodes),
           static_cast<unsigned long long>(graph_kernel_nodes),
           static_cast<unsigned long long>(graph_host_nodes),
           static_cast<unsigned long long>(graph_device_enqueued),
           static_cast<unsigned long long>(graph_pruned));
    append(j,
           "    \"cache_hits\": %llu, \"cache_misses\": %llu, "
           "\"cache_evictions\": %llu, \"cache_hit_rate\": %.4f\n",
           static_cast<unsigned long long>(graph_cache_hits),
           static_cast<unsigned long long>(graph_cache_misses),
           static_cast<unsigned long long>(graph_cache_evictions),
           graph_cache_hit_rate());
    append(j, "  },\n");
    append(j, "  \"tune\": {\n");
    append(j,
           "    \"enabled\": %s, \"decisions\": %llu, \"plan_switches\": %llu, "
           "\"tuned_batches\": %llu, \"sketch_ms\": %.6f,\n",
           tune_enabled ? "true" : "false",
           static_cast<unsigned long long>(tune_decisions),
           static_cast<unsigned long long>(tune_plan_switches),
           static_cast<unsigned long long>(tuned_batches), tune_sketch_ms);
    append(j, "    \"cells\": [\n");
    for (std::size_t i = 0; i < tune_cells.size(); ++i) {
        const TuneCell& c = tune_cells[i];
        append(j,
               "      {\"regime\": \"%s\", \"candidate\": \"%s\", \"predicted\": %.3f, "
               "\"observed\": %.3f, \"observations\": %llu, \"incumbent\": %s}%s\n",
               c.regime.c_str(), c.candidate.c_str(), c.predicted, c.observed,
               static_cast<unsigned long long>(c.observations),
               c.incumbent ? "true" : "false", i + 1 < tune_cells.size() ? "," : "");
    }
    append(j, "    ]\n");
    append(j, "  },\n");
    append(j, "  \"health\": {\n");
    append(j,
           "    \"enabled\": %s, \"demotions\": %llu, \"quarantines\": %llu, "
           "\"probations\": %llu, \"readmissions\": %llu, "
           "\"degraded_recoveries\": %llu,\n",
           health.enabled ? "true" : "false",
           static_cast<unsigned long long>(health.demotions),
           static_cast<unsigned long long>(health.quarantines),
           static_cast<unsigned long long>(health.probations),
           static_cast<unsigned long long>(health.readmissions),
           static_cast<unsigned long long>(health.degraded_recoveries));
    append(j,
           "    \"probes_run\": %llu, \"probes_passed\": %llu, \"probes_failed\": %llu, "
           "\"hangs_detected\": %llu,\n",
           static_cast<unsigned long long>(health.probes_run),
           static_cast<unsigned long long>(health.probes_passed),
           static_cast<unsigned long long>(health.probes_failed),
           static_cast<unsigned long long>(health.hangs_detected));
    append(j,
           "    \"hedges_launched\": %llu, \"hedge_wins\": %llu, "
           "\"hedge_primary_wins\": %llu, \"hedge_mismatches\": %llu,\n",
           static_cast<unsigned long long>(health.hedges_launched),
           static_cast<unsigned long long>(health.hedge_wins),
           static_cast<unsigned long long>(health.hedge_primary_wins),
           static_cast<unsigned long long>(health.hedge_mismatches));
    append(j,
           "    \"shed_overflow\": %llu, \"shed_brownout\": %llu, "
           "\"shed_sojourn\": %llu, \"shed_total\": %llu,\n",
           static_cast<unsigned long long>(health.shed_overflow),
           static_cast<unsigned long long>(health.shed_brownout),
           static_cast<unsigned long long>(health.shed_sojourn),
           static_cast<unsigned long long>(health.shed_total()));
    append(j,
           "    \"brownout_level\": %d, \"brownout_escalations\": %llu, "
           "\"brownout_deescalations\": %llu, \"verify_skipped_batches\": %llu\n",
           health.brownout_level,
           static_cast<unsigned long long>(health.brownout_escalations),
           static_cast<unsigned long long>(health.brownout_deescalations),
           static_cast<unsigned long long>(health.verify_skipped_batches));
    append(j, "  },\n");
    append(j, "  \"modeled\": {\n");
    append(j,
           "    \"kernel_ms\": %.6f, \"h2d_ms\": %.6f, \"d2h_ms\": %.6f, "
           "\"overlap_ms\": %.6f, \"serial_ms\": %.6f, \"overlap_speedup\": %.4f, "
           "\"throughput_rps\": %.2f,\n",
           modeled_kernel_ms, modeled_h2d_ms, modeled_d2h_ms, modeled_overlap_ms,
           modeled_serial_ms, overlap_speedup(), modeled_throughput_rps());
    append(j,
           "    \"h2d_busy_ms\": %.6f, \"compute_busy_ms\": %.6f, \"d2h_busy_ms\": %.6f, "
           "\"h2d_utilization\": %.4f, \"compute_utilization\": %.4f, "
           "\"d2h_utilization\": %.4f\n",
           h2d_busy_ms, compute_busy_ms, d2h_busy_ms, h2d_utilization,
           compute_utilization, d2h_utilization);
    append(j, "  },\n");
    append(j, "  \"wall_service_ms\": %.6f,\n", wall_service_ms);
    append(j, "  \"pool\": {\n");
    append(j,
           "    \"acquires\": %llu, \"reuse_hits\": %llu, \"device_allocs\": %llu, "
           "\"reuse_rate\": %.4f, \"bytes_cached\": %zu, \"peak_leased\": %zu\n",
           static_cast<unsigned long long>(pool.acquires),
           static_cast<unsigned long long>(pool.reuse_hits),
           static_cast<unsigned long long>(pool.device_allocs), pool.reuse_rate(),
           pool.bytes_cached, pool.peak_leased);
    append(j, "  },\n");
    append(j, "  \"latency\": {\n");
    append_latency(j, "queue_wait_ms", queue_wait_ms);
    append_latency(j, "wall_ms", wall_ms);
    append_latency(j, "modeled_ms", modeled_ms, /*last=*/true);
    append(j, "  }\n}\n");
    return j;
}

}  // namespace gas::serve
