#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/resilient.hpp"
#include "serve/pool.hpp"
#include "serve/request.hpp"
#include "serve/stats.hpp"
#include "simt/device.hpp"
#include "simt/stream.hpp"

namespace gas::serve {

/// What submit() does when the queue is at capacity.
enum class AdmitPolicy : std::uint8_t {
    Block,   ///< wait for space (or for the server to stop)
    Reject,  ///< fail fast with Status::Rejected
};

struct ServerConfig {
    /// Bounded submission queue.  0 means "admit nothing": every submit is
    /// rejected immediately, regardless of policy (a Block policy cannot
    /// wait for space that can never exist).
    std::size_t queue_capacity = 1024;
    AdmitPolicy policy = AdmitPolicy::Block;

    /// Micro-batch ceilings: at most this many requests / fused arrays per
    /// device batch.  The memory budget below caps batches further.
    std::size_t max_batch_requests = 64;
    std::size_t max_batch_arrays = 8192;

    /// Fraction of device memory a batch (data + sort temporaries) may use;
    /// single requests above this budget degrade to the CPU path.
    double memory_safety_factor = 0.9;

    /// Stream pipeline depth for the simt::Timeline overlap model (2 =
    /// double buffering).  Must be >= 1, like ooc::OocOptions::num_streams.
    unsigned num_streams = 2;

    /// After waking on a non-empty queue, wait this long for more
    /// compatible requests before closing the batch (async mode only).
    /// 0 = serve whatever is queued right now.
    double linger_us = 0.0;

    /// Manual-pump mode: no scheduler thread; the caller drives batches by
    /// calling pump().  Deterministic (tests, benches).  A full queue
    /// rejects even under AdmitPolicy::Block — there is no concurrent
    /// consumer to wait for.
    bool manual_pump = false;

    /// Validate every fused device batch (sortedness + permutation) before
    /// completing its requests.  Costs a host pass; meant for tests.
    bool validate = false;

    /// Per-request response verification (gas::resilient): expected multiset
    /// checksums are taken from the host copy while staging, and one verify
    /// kernel checks sortedness + checksum per row after the device sort.  A
    /// request with any failing row is quarantined — its response comes from
    /// a solo host re-sort of the original input, never the suspect device
    /// bytes.  Off by default: no extra kernel, bit-identical responses.
    bool verify_responses = false;

    /// Retry policy for transient device errors (gas::resilient::transient):
    /// a failed fused batch is re-staged from the intact host copies and
    /// re-executed with modeled backoff; after max_attempts the whole batch
    /// is quarantined to the host path.  Also drives acquire-side allocation
    /// retries (pool trim between attempts).
    gas::resilient::RetryPolicy retry{};
};

/// Asynchronous batch-sort service over one simulated device.
///
/// Concurrent callers submit() jobs into a bounded priority queue; a single
/// scheduler thread (the only toucher of the simt::Device, whose launch path
/// is single-caller by contract) coalesces compatible neighbours — same job
/// kind, geometry and sort options — into fused micro-batches executed
/// through the batched entry points of core/batch.hpp, with data staged in
/// pooled device buffers (serve::BufferPool) and modeled H2D/compute/D2H
/// overlap tracked on a multi-stream simt::Timeline.
///
/// Robustness: admission control (Block or Reject on a full queue),
/// per-request deadlines (expired jobs complete as TimedOut, at submit or in
/// queue), cancel() for queued jobs, and graceful degradation — a request
/// the device cannot serve (footprint above the memory budget, or a row too
/// large for the fused kernels' shared staging) runs on the host CPU path
/// instead of failing, and never aborts the batch it was queued with.
///
/// Resilience (gas::resilient): transient device errors — allocation
/// failures, refused launches, detected corruption, failed verification —
/// retry the fused batch per ServerConfig::retry (host copies are untouched
/// until copy-back, so every attempt re-stages clean data); exhausted
/// retries quarantine the batch to solo host re-sorts.  With
/// verify_responses on, each request's rows are individually checked
/// (sortedness + multiset checksum vs the pre-staging host data) and only
/// failing requests are quarantined — their batchmates are served normally.
/// ServerStats counts retries, quarantines and verification failures.
///
/// Fusion preserves results: every kernel handles one array per block, so a
/// request's sorted bytes are identical whether it rode a fused batch or a
/// direct gas::gpu_array_sort / gpu_ragged_sort / gpu_pair_sort call (see
/// core/batch.hpp).
class Server {
  public:
    struct Ticket {
        std::uint64_t id = 0;
        std::future<Response> result;
    };

    /// The server borrows the device for its lifetime: no other code may
    /// launch kernels or allocate device memory until stop()/destruction.
    explicit Server(simt::Device& device, ServerConfig cfg = {});
    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;
    ~Server();  ///< stop(/*cancel_pending=*/false): drains, then joins

    /// Submits a job.  Returns a ticket whose future resolves to the
    /// Response (including rejections — the future always resolves).
    /// Throws std::invalid_argument for malformed jobs (undersized buffers,
    /// non-ascending offsets).
    Ticket submit(Job job);

    /// Removes a still-queued request; true on success, false when it
    /// already started (or finished) service.
    bool cancel(std::uint64_t id);

    /// Blocks until the queue is empty and no batch is in flight.  In
    /// manual-pump mode this simply pumps until empty.
    void drain();

    /// Stops the scheduler.  cancel_pending=false serves everything still
    /// queued first (graceful drain); true completes queued requests as
    /// Cancelled without executing them.  Idempotent.
    void stop(bool cancel_pending = false);

    /// Manual-pump mode: serve queued requests now (forming batches exactly
    /// as the scheduler thread would); returns requests retired.  Throws
    /// std::logic_error when the server runs its own scheduler thread.
    std::size_t pump();

    [[nodiscard]] ServerStats stats() const;
    [[nodiscard]] std::string stats_json() const { return stats().to_json(); }
    [[nodiscard]] const ServerConfig& config() const { return cfg_; }

  private:
    struct Pending {
        std::uint64_t id = 0;
        Job job;
        std::promise<Response> promise;
        Clock::time_point submitted_at{};
        std::size_t arrays = 0;    ///< fused-array count this job contributes
        std::size_t elements = 0;  ///< total values (cost-share weight)
    };
    using PendingPtr = std::unique_ptr<Pending>;

    static constexpr std::size_t kPriorities = 3;

    void scheduler_main();
    /// Pops one batch worth of compatible requests (queue lock held).
    /// Expired requests encountered on the way complete as TimedOut into
    /// `expired`.
    std::vector<PendingPtr> take_batch(std::vector<PendingPtr>& expired);
    void serve_batch(std::vector<PendingPtr> batch);
    void execute_uniform(std::vector<PendingPtr>& batch);
    void execute_ragged(std::vector<PendingPtr>& batch);
    void execute_pairs(std::vector<PendingPtr>& batch);
    void run_cpu_fallback(Pending& p, bool quarantined = false);
    /// Completes verification-failed requests as solo host re-sorts (the
    /// suspect device bytes are never copied back).
    void quarantine_failed(std::vector<PendingPtr>& victims);
    void fail_batch(std::vector<PendingPtr>& batch, const std::string& why);
    void finish_batch(std::vector<PendingPtr>& batch, double h2d_ms, double d2h_ms,
                      double kernel_ms, std::uint64_t batch_id,
                      Clock::time_point service_start);
    [[nodiscard]] bool needs_cpu_fallback(const Job& job) const;
    [[nodiscard]] BufferPool::Lease acquire_or_trim(std::size_t bytes);
    void snapshot_pool_stats();  ///< copy pool stats under the queue lock

    simt::Device& device_;
    ServerConfig cfg_;
    std::size_t memory_budget_ = 0;

    mutable std::mutex mutex_;
    std::condition_variable queue_cv_;  ///< scheduler waits for work
    std::condition_variable space_cv_;  ///< Block-policy submitters wait here
    std::condition_variable idle_cv_;   ///< drain() waits here
    std::deque<PendingPtr> queue_[kPriorities];
    std::size_t queued_ = 0;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
    bool cancel_pending_ = false;
    std::uint64_t next_id_ = 1;
    std::uint64_t next_batch_id_ = 1;

    // Owned by the scheduler thread (or pump() caller) outside the lock.
    BufferPool pool_;
    simt::Timeline timeline_;

    // Guarded by mutex_.
    ServerStats stats_;
    LatencyDigest queue_wait_digest_;
    LatencyDigest wall_digest_;
    LatencyDigest modeled_digest_;

    std::thread scheduler_;
};

}  // namespace gas::serve
