#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/resilient.hpp"
#include "core/sort_graph.hpp"
#include "fleet/fleet.hpp"
#include "fleet/router.hpp"
#include "health/brownout.hpp"
#include "health/config.hpp"
#include "health/state.hpp"
#include "serve/pool.hpp"
#include "serve/request.hpp"
#include "serve/stats.hpp"
#include "simt/device.hpp"
#include "simt/stream.hpp"
#include "tune/controller.hpp"

namespace gas::serve {

/// What submit() does when the queue is at capacity.
enum class AdmitPolicy : std::uint8_t {
    Block,   ///< wait for space (or for the server to stop)
    Reject,  ///< fail fast with Status::Rejected
};

struct ServerConfig {
    /// Bounded submission queue (fleet-wide, summed over shard queues).  0
    /// means "admit nothing": every submit is rejected immediately,
    /// regardless of policy (a Block policy cannot wait for space that can
    /// never exist).
    std::size_t queue_capacity = 1024;
    AdmitPolicy policy = AdmitPolicy::Block;

    /// Micro-batch ceilings: at most this many requests / fused arrays per
    /// device batch.  The memory budget below caps batches further.
    std::size_t max_batch_requests = 64;
    std::size_t max_batch_arrays = 8192;

    /// Fraction of device memory a batch (data + sort temporaries) may use;
    /// single requests above every shard's budget degrade to the CPU path.
    double memory_safety_factor = 0.9;

    /// Stream pipeline depth for each shard's simt::Timeline overlap model
    /// (2 = double buffering).  Must be >= 1, like ooc::OocOptions.
    unsigned num_streams = 2;

    /// After waking on a non-empty queue, wait this long for more
    /// compatible requests before closing the batch (async mode only).
    /// 0 = serve whatever is queued right now.
    double linger_us = 0.0;

    /// Manual-pump mode: no scheduler threads; the caller drives batches by
    /// calling pump().  Deterministic (tests, benches).  A full queue
    /// rejects even under AdmitPolicy::Block — there is no concurrent
    /// consumer to wait for.
    bool manual_pump = false;

    /// Validate every fused device batch (sortedness + permutation) before
    /// completing its requests.  Costs a host pass; meant for tests.
    bool validate = false;

    /// Per-request response verification (gas::resilient): expected multiset
    /// checksums are taken from the host copy while staging, and one verify
    /// kernel checks sortedness + checksum per row after the device sort.  A
    /// request with any failing row is quarantined — its response comes from
    /// a solo host re-sort of the original input, never the suspect device
    /// bytes.  Off by default: no extra kernel, bit-identical responses.
    bool verify_responses = false;

    /// Retry policy for transient device errors (gas::resilient::transient):
    /// a failed fused batch is re-staged from the intact host copies and
    /// re-executed with modeled backoff; after max_attempts the batch is
    /// re-routed to a surviving device (fleet) or quarantined to the host
    /// path (last device standing).  Also drives acquire-side allocation
    /// retries (pool trim between attempts).
    gas::resilient::RetryPolicy retry{};

    /// Request-to-device placement over the fleet (moot with one device).
    gas::fleet::RoutePolicy route_policy = gas::fleet::RoutePolicy::LeastLoaded;

    /// An idle shard may steal up to this many queued requests at a time
    /// from the most loaded peer.  0 disables work stealing.
    std::size_t max_steal_requests = 8;

    /// Upper bound of the key domain for KeyRange routing (hints are
    /// normalized by it).  The default is the paper's [0, 2^31) domain.
    double key_space_max = gas::fleet::Router::kDefaultKeySpace;

    /// Adaptive autotuning (gas::tune): sketch each float request's key
    /// distribution at submit and let a closed-loop controller reshape the
    /// sort-shaping options (sampling rate, bucket target, phase-2 strategy,
    /// phase-3 cutoffs) per fused batch, learning from observed modeled
    /// cost.  Pair batches are never tuned (their key-equal payload order is
    /// plan-dependent); a request with Options::auto_tune off is never tuned
    /// either.  Off pins every batch to its submitted options bit-for-bit —
    /// bytes, kernel log and KernelStats identical to the pre-tune server.
    bool auto_tune = true;

    /// Closed-loop health subsystem (gas::health): per-shard watchdog + hang
    /// handler, the Healthy/Degraded/Quarantined/Probation state machine
    /// with probe-sort re-admission, overload shedding with the brownout
    /// ladder, and straggler hedging.  Disabled by default: with
    /// health.enabled false the server behaves bit-for-bit like the
    /// pre-health server (one-way quarantine, Block/Reject admission, no
    /// watchdog thread, no hang handlers installed).
    gas::health::HealthConfig health{};
};

/// Asynchronous batch-sort service over a fleet of simulated devices.
///
/// Concurrent callers submit() jobs into a bounded priority queue.  Each
/// request is routed to one device of the fleet (fleet::Router — least
/// loaded, consistent hash on a content fingerprint, or key-range sharding)
/// and lands in that shard's queue.  Each shard runs one scheduler thread —
/// the only toucher of its simt::Device, whose launch path is single-caller
/// by contract — which coalesces compatible neighbours (same job kind,
/// geometry and sort options) into fused micro-batches executed through the
/// batched entry points of core/batch.hpp, with data staged in pooled device
/// buffers (serve::BufferPool, one per shard) and modeled H2D/compute/D2H
/// overlap tracked on a per-shard multi-stream simt::Timeline.  An idle
/// shard steals bounded runs of queued requests from its most loaded peer,
/// so a burst routed to one device spreads across the fleet.  Constructing
/// from a single simt::Device& is the N=1 degenerate fleet: identical
/// behaviour and API to the pre-fleet server.
///
/// Robustness: admission control (Block or Reject on a full queue),
/// per-request deadlines (expired jobs complete as TimedOut, at submit or in
/// queue), cancel() for queued jobs, and graceful degradation — a request
/// no device can serve (footprint above the memory budget, or a row too
/// large for the fused kernels' shared staging) runs on the host CPU path
/// instead of failing, and never aborts the batch it was queued with.
///
/// Resilience (gas::resilient): transient device errors — allocation
/// failures, refused launches, detected corruption, failed verification —
/// retry the fused batch per ServerConfig::retry (host copies are untouched
/// until copy-back, so every attempt re-stages clean data).  Exhausted
/// retries mean the device is gone: with surviving peers the shard is
/// quarantined — removed from routing — and its batch plus everything still
/// queued on it re-routes to the survivors, whose re-execution from the
/// intact host copies yields byte-identical responses; the last live device
/// instead quarantines the batch to solo host re-sorts, exactly the
/// single-device behaviour.  With verify_responses on, each request's rows
/// are individually checked (sortedness + multiset checksum vs the
/// pre-staging host data) and only failing requests are quarantined — their
/// batchmates are served normally.  ServerStats counts retries, quarantines,
/// steals, re-routes and device losses, with a per-device breakdown.
///
/// Fusion preserves results: every kernel handles one array per block, so a
/// request's sorted bytes are identical whether it rode a fused batch or a
/// direct gas::gpu_array_sort / gpu_ragged_sort / gpu_pair_sort call — on
/// any device of the fleet (see core/batch.hpp).
class Server {
  public:
    struct Ticket {
        std::uint64_t id = 0;
        std::future<Response> result;
    };

    /// Single-device server (the N=1 degenerate fleet).  The server borrows
    /// the device for its lifetime: no other code may launch kernels or
    /// allocate device memory until stop()/destruction.
    explicit Server(simt::Device& device, ServerConfig cfg = {});

    /// Fleet server: one shard (queue, BufferPool, Timeline, scheduler
    /// thread) per device.  The fleet must outlive the server; the same
    /// borrow-for-lifetime rule applies to every device in it.
    explicit Server(gas::fleet::DeviceFleet& fleet, ServerConfig cfg = {});

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;
    ~Server();  ///< stop(/*cancel_pending=*/false): drains, then joins

    /// Submits a job.  Returns a ticket whose future resolves to the
    /// Response (including rejections — the future always resolves).
    /// Throws std::invalid_argument for malformed jobs (undersized buffers,
    /// non-ascending offsets).
    Ticket submit(Job job);

    /// Removes a still-queued request; true on success, false when it
    /// already started (or finished) service.
    bool cancel(std::uint64_t id);

    /// Blocks until the queue is empty and no batch is in flight.  In
    /// manual-pump mode this simply pumps until empty.
    void drain();

    /// Stops the schedulers.  cancel_pending=false serves everything still
    /// queued first (graceful drain); true completes queued requests as
    /// Cancelled without executing them.  Idempotent.
    void stop(bool cancel_pending = false);

    /// Manual-pump mode: serve queued requests now; returns requests
    /// retired.  Round-robins the shards, each serving one batch per pass
    /// (forming batches exactly as its scheduler thread would, including
    /// work stealing when its own queue is empty), until every queue is
    /// drained.  Throws std::logic_error when the server runs scheduler
    /// threads.
    std::size_t pump();

    [[nodiscard]] ServerStats stats() const;
    [[nodiscard]] std::string stats_json() const { return stats().to_json(); }
    [[nodiscard]] const ServerConfig& config() const { return cfg_; }
    [[nodiscard]] std::size_t num_devices() const { return shards_.size(); }

  private:
    struct Shard;

    /// First-result-wins rendezvous between a request and its hedge clone.
    /// The caller's promise moves in here when the request's batch registers
    /// for hedging; from then on only resolve() — under `m` — may touch it.
    /// The loser's bytes are hashed against the winner's: any divergence is
    /// a hedge_mismatch (the correctness gate — hedged re-execution from the
    /// intact host copy must be byte-identical).
    struct HedgeState {
        std::mutex m;
        std::promise<Response> promise;
        bool resolved = false;
        bool launched = false;         ///< a hedge clone was actually enqueued
        bool winner_ok = false;        ///< winner resolved Status::Ok
        bool winner_from_hedge = false;
        std::uint64_t winner_hash = 0; ///< FNV-1a over the winner's bytes
    };

    struct Pending {
        std::uint64_t id = 0;
        Job job;
        std::promise<Response> promise;
        Clock::time_point submitted_at{};
        std::size_t arrays = 0;    ///< fused-array count this job contributes
        std::size_t elements = 0;  ///< total values (cost-share weight)
        gas::fleet::RouteInfo rinfo;  ///< computed once; re-routes are cheap
        /// Distribution sketch taken at submit (auto_tune only; empty for
        /// pair jobs and opted-out requests).  Batch members' sketches merge
        /// into the controller's per-batch view.
        gas::tune::Sketch sketch;
        double sketch_ms = 0.0;  ///< modeled cost of taking the sketch
        /// Queue occupancy observed at admission (backpressure signal,
        /// copied into the Response on every completion path).
        double backpressure = 0.0;
        /// Hedging rendezvous; null until the request's batch registers
        /// in-flight with hedging eligible.  Non-null means `promise` above
        /// has been moved out and completions must go through resolve().
        std::shared_ptr<HedgeState> hedge;
        bool is_hedge = false;  ///< a watchdog clone, not a caller request
    };
    using PendingPtr = std::unique_ptr<Pending>;

    /// One in-flight fused batch the watchdog may hedge: the source shard,
    /// when service started, and per-request input snapshots (Job copies)
    /// plus their HedgeStates.  Registered at serve_batch entry, erased on
    /// exit (RAII), guarded by mutex_.
    struct InFlight {
        Shard* shard = nullptr;
        Clock::time_point start{};
        bool hedged = false;
        std::vector<Job> snapshot;
        std::vector<std::shared_ptr<HedgeState>> states;
    };

    static constexpr std::size_t kPriorities = 3;

    /// One device's slice of the server: queue, pool, overlap timeline and
    /// (async mode) scheduler thread.  Queue fields and `breakdown` are
    /// guarded by the server-wide mutex_; pool and timeline are touched by
    /// the owning scheduler (timeline mutations happen under mutex_ so
    /// stats() can fold all shards).
    struct Shard {
        Shard(std::size_t idx, simt::Device& dev, unsigned streams,
              double safety_factor);

        std::size_t index;
        simt::Device* device;
        std::size_t memory_budget;
        BufferPool pool;
        simt::Timeline timeline;
        std::deque<PendingPtr> queue[kPriorities];
        std::size_t queued = 0;
        std::size_t queued_elements = 0;
        std::size_t in_flight = 0;
        bool quarantined = false;
        DeviceBreakdown breakdown;
        /// Graph reuse cache (core/sort_graph.hpp): one held pipeline per
        /// shard, keyed by the last uniform batch's fingerprint (device
        /// span, geometry, effective options).  Touched only by the owning
        /// scheduler; the hit/miss/evict counters live in stats_ (mutex_).
        std::unique_ptr<UniformSortGraph> graph_cache;

        // gas::health wiring (all inert with health.enabled off).
        gas::health::Machine health;  ///< per-device state machine (mutex_)
        /// EWMA of queued_elements (health.load_alpha), the smoothed_load the
        /// fleet router's anti-flap ranking reads (mutex_).
        double load_ewma = 0.0;
        bool load_ewma_primed = false;
        /// Set by the watchdog when the device heartbeat stalls past the
        /// deadline; read lock-free by the hang handler (abort the hung
        /// launch) and cleared when progress resumes or a batch finishes.
        std::atomic<bool> stall_flag{false};
        std::uint64_t probe_count = 0;  ///< probe seed stream (owning thread)
        // Watchdog bookkeeping (watchdog thread only, under mutex_).
        std::uint64_t hb_last_ticks = 0;
        Clock::time_point hb_last_change{};

        std::thread scheduler;
    };

    Server(ServerConfig cfg, gas::fleet::DeviceFleet* fleet,
           std::unique_ptr<gas::fleet::DeviceFleet> owned);

    void scheduler_main(Shard& shard);
    /// Routes a job to a shard index (lock held).  Falls back to
    /// fingerprint % N when nothing is live (all-devices-lost host path).
    [[nodiscard]] std::size_t route_locked(const Pending& p) const;
    /// True when `thief` could steal at least one request right now.
    [[nodiscard]] bool steal_candidate_locked(const Shard& thief) const;
    /// Moves up to cfg_.max_steal_requests requests from the most loaded
    /// peer into `thief`; returns how many moved (lock held).
    std::size_t steal_into_locked(Shard& thief);
    /// Pops one batch worth of compatible requests from the shard's queue
    /// (lock held).  Expired requests encountered on the way complete as
    /// TimedOut into `expired`; health sojourn-shed victims into `shed`.
    std::vector<PendingPtr> take_batch(Shard& shard, std::vector<PendingPtr>& expired,
                                       std::vector<PendingPtr>& shed);
    void serve_batch(Shard& shard, std::vector<PendingPtr> batch);
    void execute_uniform(Shard& shard, std::vector<PendingPtr>& batch);
    void execute_ragged(Shard& shard, std::vector<PendingPtr>& batch);
    void execute_pairs(Shard& shard, std::vector<PendingPtr>& batch);
    void run_cpu_fallback(Pending& p, bool quarantined = false);
    /// Completes verification-failed requests as solo host re-sorts (the
    /// suspect device bytes are never copied back).
    void quarantine_failed(std::vector<PendingPtr>& victims);
    /// Device loss: quarantines the shard and re-homes its batch + queue on
    /// surviving shards; the last live device host-serves the batch instead.
    void quarantine_and_reroute(Shard& shard, std::vector<PendingPtr>& batch);
    void fail_batch(std::vector<PendingPtr>& batch, const std::string& why);
    void finish_batch(Shard& shard, std::vector<PendingPtr>& batch, double h2d_ms,
                      double d2h_ms, double kernel_ms, Clock::time_point service_start);
    [[nodiscard]] bool needs_cpu_fallback(const Shard& shard, const Job& job) const;
    [[nodiscard]] BufferPool::Lease acquire_or_trim(Shard& shard, std::size_t bytes);

    // gas::health internals (all no-ops / pass-throughs with health off).
    /// Completes a request.  Without a HedgeState this is promise.set_value;
    /// with one it is the first-result-wins path (loser hashed against the
    /// winner).  Never call with mutex_ held.
    void resolve(Pending& p, Response&& r);
    /// Samples the shard's queue-depth EWMA (stats) and, with health on, its
    /// queued-elements EWMA (router smoothed_load).  Lock held.
    void sample_load_locked(Shard& shard);
    /// Re-reads EWMA occupancy and walks the brownout ladder.  Lock held.
    void update_brownout_locked();
    /// Queue-full admission under health shedding: drops the oldest queued
    /// request of the least important non-empty class at or below the
    /// newcomer's priority (into `victim`), making room.  Returns false when
    /// everything queued outranks the newcomer — the newcomer itself sheds.
    /// Lock held.
    bool shed_for_admission_locked(Priority incoming, PendingPtr& victim);
    /// Completes a shed request with Status::Shed.  Never call with mutex_
    /// held; counters are the call sites' job (under mutex_).
    void finish_shed(PendingPtr p, const char* why);
    /// One probe-sort cycle against a quarantined shard's device.  Must run
    /// on the device-owning thread (scheduler, or the pump caller); takes
    /// mutex_ internally for the state-machine transition.
    void run_probe_cycle(Shard& shard);
    /// Registers a batch as in-flight for the watchdog/hedging (moves the
    /// members' promises into fresh HedgeStates); returns the registry token
    /// (0 = not registered).  Lock NOT held.
    [[nodiscard]] std::uint64_t register_inflight(Shard& shard,
                                                  std::vector<PendingPtr>& batch);
    void unregister_inflight(std::uint64_t token);
    /// Watchdog thread body: heartbeat stall detection + hedge launches.
    void watchdog_main();
    /// Enqueues hedge clones for in-flight batches stuck past the deadline
    /// on suspect shards.  Lock held.
    void launch_hedges_locked(Clock::time_point now);

    std::unique_ptr<gas::fleet::DeviceFleet> owned_fleet_;  ///< Device& ctor only
    gas::fleet::DeviceFleet* fleet_;
    ServerConfig cfg_;
    gas::fleet::Router router_;
    std::vector<std::unique_ptr<Shard>> shards_;

    mutable std::mutex mutex_;
    std::condition_variable queue_cv_;  ///< schedulers wait for work
    std::condition_variable space_cv_;  ///< Block-policy submitters wait here
    std::condition_variable idle_cv_;   ///< drain() waits here
    std::size_t queued_ = 0;     ///< fleet-wide, sum of shard queues
    std::size_t in_flight_ = 0;  ///< fleet-wide, sum of shard batches
    bool stopping_ = false;
    bool cancel_pending_ = false;
    std::uint64_t next_id_ = 1;
    std::uint64_t next_batch_id_ = 1;

    // gas::health (all guarded by mutex_ unless noted).
    gas::health::Brownout brownout_;
    /// brownout_.level() mirrored for the lock-free execute-path read that
    /// decides whether L1 skips response verification.
    std::atomic<int> brownout_level_cache_{0};
    HealthStats hstats_;
    std::unordered_map<std::uint64_t, InFlight> inflight_;
    std::uint64_t next_inflight_ = 1;
    std::condition_variable watchdog_cv_;
    std::thread watchdog_;  ///< started only with health on, async mode

    // Guarded by mutex_.
    ServerStats stats_;
    LatencyDigest queue_wait_digest_;
    LatencyDigest wall_digest_;
    LatencyDigest modeled_digest_;
    /// One controller for the whole fleet (guarded by mutex_): every
    /// shard's observations land in the same cells and every shard's next
    /// batch reads them — the cross-shard broadcast.
    gas::tune::Controller controller_;
};

}  // namespace gas::serve
