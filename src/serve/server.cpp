#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/batch.hpp"

namespace gas::serve {

namespace {

double ms_between(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Two jobs can share a fused batch: same kind, same uniform geometry, and
/// the same sort-shaping options (anything that changes splitters, bucketing
/// or phase-3 behaviour).  validate/collect_bucket_sizes are server-owned
/// and deliberately excluded.
bool compatible(const Job& a, const Job& b) {
    if (a.kind != b.kind) return false;
    if (a.kind != JobKind::Ragged && a.array_size != b.array_size) return false;
    const Options& x = a.opts;
    const Options& y = b.opts;
    return x.bucket_target == y.bucket_target && x.sampling_rate == y.sampling_rate &&
           x.strategy == y.strategy && x.order == y.order &&
           x.threads_per_bucket == y.threads_per_bucket &&
           x.hybrid_phase3 == y.hybrid_phase3 &&
           x.phase3_small_cutoff == y.phase3_small_cutoff &&
           x.phase3_bitonic_cutoff == y.phase3_bitonic_cutoff;
}

bool expired(const Job& job, Clock::time_point now) {
    return job.deadline.has_value() && *job.deadline <= now;
}

std::size_t job_arrays(const Job& job) {
    if (job.kind == JobKind::Ragged) {
        return job.offsets.size() < 2 ? 0 : job.offsets.size() - 1;
    }
    return job.num_arrays;
}

std::size_t job_elements(const Job& job) {
    if (job.kind == JobKind::Ragged) {
        return job.offsets.size() < 2
                   ? 0
                   : static_cast<std::size_t>(job.offsets.back() - job.offsets.front());
    }
    return job.num_arrays * job.array_size;
}

void validate_job(const Job& job) {
    switch (job.kind) {
        case JobKind::Uniform:
            if (job.values.size() < job.num_arrays * job.array_size) {
                throw std::invalid_argument("serve: uniform job values smaller than N x n");
            }
            break;
        case JobKind::Pairs:
            if (job.values.size() < job.num_arrays * job.array_size ||
                job.payload.size() < job.num_arrays * job.array_size) {
                throw std::invalid_argument("serve: pair job buffers smaller than N x n");
            }
            break;
        case JobKind::Ragged: {
            for (std::size_t i = 1; i < job.offsets.size(); ++i) {
                if (job.offsets[i] < job.offsets[i - 1]) {
                    throw std::invalid_argument("serve: ragged offsets not ascending");
                }
            }
            if (!job.offsets.empty() && job.values.size() < job.offsets.back()) {
                throw std::invalid_argument("serve: ragged values smaller than offsets");
            }
            break;
        }
    }
}

/// Host comparison mirroring the device's key order.
struct KeyLess {
    bool descending = false;
    bool operator()(float a, float b) const { return descending ? a > b : a < b; }
};

}  // namespace

Server::Server(simt::Device& device, ServerConfig cfg)
    : device_(device),
      cfg_(cfg),
      pool_(device.memory()),
      timeline_(std::max(1u, cfg.num_streams)) {
    if (cfg_.num_streams == 0) {
        throw std::invalid_argument("serve::Server: 0 streams");
    }
    if (cfg_.max_batch_requests == 0 || cfg_.max_batch_arrays == 0) {
        throw std::invalid_argument("serve::Server: batch ceilings must be >= 1");
    }
    if (!(cfg_.memory_safety_factor > 0.0) || cfg_.memory_safety_factor > 1.0) {
        throw std::invalid_argument("serve::Server: memory_safety_factor must be in (0, 1]");
    }
    memory_budget_ = static_cast<std::size_t>(
        static_cast<double>(device_.memory().capacity()) * cfg_.memory_safety_factor);
    // Engine stalls from an injected fault plan (simt::faults) show up in the
    // overlap model; plans installed after construction still apply.
    timeline_.attach_faults(device_);
    if (!cfg_.manual_pump) {
        scheduler_ = std::thread(&Server::scheduler_main, this);
    }
}

Server::~Server() { stop(/*cancel_pending=*/false); }

Server::Ticket Server::submit(Job job) {
    validate_job(job);
    const auto now = Clock::now();

    auto pending = std::make_unique<Pending>();
    pending->job = std::move(job);
    pending->submitted_at = now;
    pending->arrays = job_arrays(pending->job);
    pending->elements = job_elements(pending->job);

    Ticket ticket;
    ticket.result = pending->promise.get_future();

    auto respond = [&](Status status, const char* why) {
        Response r;
        r.status = status;
        r.error = why;
        r.values = std::move(pending->job.values);
        r.payload = std::move(pending->job.payload);
        pending->promise.set_value(std::move(r));
    };

    std::unique_lock lk(mutex_);
    pending->id = next_id_++;
    ticket.id = pending->id;
    ++stats_.submitted;

    if (stopping_) {
        ++stats_.rejected;
        lk.unlock();
        respond(Status::Rejected, "server stopped");
        return ticket;
    }
    if (expired(pending->job, now)) {
        ++stats_.timed_out;
        lk.unlock();
        respond(Status::TimedOut, "deadline expired at submit");
        return ticket;
    }
    if (pending->elements == 0) {  // nothing to sort: complete right away
        ++stats_.accepted;
        ++stats_.completed;
        lk.unlock();
        respond(Status::Ok, "");
        return ticket;
    }
    if (cfg_.queue_capacity == 0) {
        ++stats_.rejected;
        lk.unlock();
        respond(Status::Rejected, "queue capacity is 0");
        return ticket;
    }
    if (queued_ >= cfg_.queue_capacity) {
        if (cfg_.policy == AdmitPolicy::Reject || cfg_.manual_pump) {
            ++stats_.rejected;
            lk.unlock();
            respond(Status::Rejected, "queue full");
            return ticket;
        }
        space_cv_.wait(lk, [&] { return queued_ < cfg_.queue_capacity || stopping_; });
        if (stopping_) {
            ++stats_.rejected;
            lk.unlock();
            respond(Status::Rejected, "server stopped");
            return ticket;
        }
    }

    ++stats_.accepted;
    queue_[static_cast<std::size_t>(pending->job.priority)].push_back(std::move(pending));
    ++queued_;
    stats_.queue_peak = std::max(stats_.queue_peak, queued_);
    lk.unlock();
    queue_cv_.notify_one();
    return ticket;
}

bool Server::cancel(std::uint64_t id) {
    PendingPtr victim;
    {
        std::lock_guard lk(mutex_);
        for (auto& q : queue_) {
            for (auto it = q.begin(); it != q.end(); ++it) {
                if ((*it)->id == id) {
                    victim = std::move(*it);
                    q.erase(it);
                    --queued_;
                    ++stats_.cancelled;
                    break;
                }
            }
            if (victim) break;
        }
    }
    if (!victim) return false;
    space_cv_.notify_one();
    Response r;
    r.status = Status::Cancelled;
    r.error = "cancelled";
    r.values = std::move(victim->job.values);
    r.payload = std::move(victim->job.payload);
    victim->promise.set_value(std::move(r));
    return true;
}

void Server::drain() {
    if (cfg_.manual_pump) {
        pump();
        return;
    }
    std::unique_lock lk(mutex_);
    idle_cv_.wait(lk, [&] { return queued_ == 0 && in_flight_ == 0; });
}

void Server::stop(bool cancel_pending) {
    {
        std::lock_guard lk(mutex_);
        if (stopping_ && !scheduler_.joinable() && queued_ == 0) return;
        stopping_ = true;
        cancel_pending_ = cancel_pending;
    }
    queue_cv_.notify_all();
    space_cv_.notify_all();
    if (scheduler_.joinable()) {
        scheduler_.join();
    } else if (cfg_.manual_pump && !cancel_pending) {
        // Graceful manual stop: serve what is still queued.
        while (pump() > 0) {}
    }
    // Cancel anything left (async cancel_pending exits the scheduler with the
    // queue intact; manual cancel_pending never served it).
    std::vector<PendingPtr> leftovers;
    {
        std::lock_guard lk(mutex_);
        for (auto& q : queue_) {
            for (auto& p : q) leftovers.push_back(std::move(p));
            q.clear();
        }
        queued_ = 0;
        stats_.cancelled += leftovers.size();
    }
    for (auto& p : leftovers) {
        Response r;
        r.status = Status::Cancelled;
        r.error = "server stopped with request still queued";
        r.values = std::move(p->job.values);
        r.payload = std::move(p->job.payload);
        p->promise.set_value(std::move(r));
    }
    idle_cv_.notify_all();
}

std::size_t Server::pump() {
    if (!cfg_.manual_pump) {
        throw std::logic_error("serve::Server::pump: server runs its own scheduler thread");
    }
    std::size_t retired = 0;
    for (;;) {
        std::vector<PendingPtr> timed_out;
        std::vector<PendingPtr> batch;
        {
            std::lock_guard lk(mutex_);
            batch = take_batch(timed_out);
        }
        if (batch.empty() && timed_out.empty()) break;
        retired += batch.size() + timed_out.size();
        for (auto& p : timed_out) {
            Response r;
            r.status = Status::TimedOut;
            r.error = "deadline expired in queue";
            r.values = std::move(p->job.values);
            r.payload = std::move(p->job.payload);
            {
                std::lock_guard lk(mutex_);
                ++stats_.timed_out;
            }
            p->promise.set_value(std::move(r));
        }
        if (!batch.empty()) serve_batch(std::move(batch));
    }
    return retired;
}

void Server::scheduler_main() {
    std::unique_lock lk(mutex_);
    for (;;) {
        queue_cv_.wait(lk, [&] { return stopping_ || queued_ > 0; });
        if (stopping_ && (cancel_pending_ || queued_ == 0)) break;
        if (queued_ == 0) continue;
        if (cfg_.linger_us > 0.0 && !stopping_ && queued_ < cfg_.max_batch_requests) {
            // Best-effort coalescing window: let a concurrent burst land
            // before the batch is closed.
            queue_cv_.wait_for(lk, std::chrono::duration<double, std::micro>(cfg_.linger_us));
        }
        std::vector<PendingPtr> timed_out;
        auto batch = take_batch(timed_out);
        in_flight_ = batch.size();
        lk.unlock();
        space_cv_.notify_all();

        for (auto& p : timed_out) {
            Response r;
            r.status = Status::TimedOut;
            r.error = "deadline expired in queue";
            r.values = std::move(p->job.values);
            r.payload = std::move(p->job.payload);
            {
                std::lock_guard slk(mutex_);
                ++stats_.timed_out;
            }
            p->promise.set_value(std::move(r));
        }
        if (!batch.empty()) serve_batch(std::move(batch));

        lk.lock();
        in_flight_ = 0;
        if (queued_ == 0) idle_cv_.notify_all();
    }
}

std::vector<Server::PendingPtr> Server::take_batch(std::vector<PendingPtr>& timed_out) {
    const auto now = Clock::now();
    std::vector<PendingPtr> batch;

    // Head: first live request in priority order.
    for (auto& q : queue_) {
        while (!q.empty() && batch.empty()) {
            PendingPtr head = std::move(q.front());
            q.pop_front();
            --queued_;
            if (expired(head->job, now)) {
                timed_out.push_back(std::move(head));
            } else {
                batch.push_back(std::move(head));
            }
        }
        if (!batch.empty()) break;
    }
    if (batch.empty()) return batch;

    const Job& head = batch.front()->job;
    // A fallback-bound request is served alone: it never joins a device
    // batch and nothing can ride with it.
    if (needs_cpu_fallback(head)) return batch;

    std::size_t total_arrays = batch.front()->arrays;
    std::size_t total_elements = batch.front()->elements;

    auto fits_memory = [&](std::size_t arrays, std::size_t elements) {
        switch (head.kind) {
            case JobKind::Uniform:
                return batch_footprint_bytes(arrays, head.array_size, head.opts,
                                             device_.props(), 1) <= memory_budget_;
            case JobKind::Ragged:
                return BufferPool::class_bytes(elements * sizeof(float)) <= memory_budget_;
            case JobKind::Pairs:
                return 2 * BufferPool::class_bytes(elements * sizeof(float)) <=
                       memory_budget_;
        }
        return false;
    };

    for (auto& q : queue_) {
        auto it = q.begin();
        while (it != q.end() && batch.size() < cfg_.max_batch_requests) {
            Pending& cand = **it;
            if (expired(cand.job, now)) {
                timed_out.push_back(std::move(*it));
                it = q.erase(it);
                --queued_;
                continue;
            }
            if (!compatible(head, cand.job) || needs_cpu_fallback(cand.job) ||
                total_arrays + cand.arrays > cfg_.max_batch_arrays ||
                !fits_memory(total_arrays + cand.arrays, total_elements + cand.elements)) {
                ++it;  // stays queued; will head its own batch later
                continue;
            }
            total_arrays += cand.arrays;
            total_elements += cand.elements;
            batch.push_back(std::move(*it));
            it = q.erase(it);
            --queued_;
        }
        if (batch.size() >= cfg_.max_batch_requests) break;
    }
    return batch;
}

bool Server::needs_cpu_fallback(const Job& job) const {
    const auto& props = device_.props();
    switch (job.kind) {
        case JobKind::Uniform:
            return batch_footprint_bytes(job.num_arrays, job.array_size, job.opts, props,
                                         1) > memory_budget_;
        case JobKind::Ragged: {
            if (BufferPool::class_bytes(job_elements(job) * sizeof(float)) > memory_budget_) {
                return true;
            }
            for (std::size_t i = 1; i < job.offsets.size(); ++i) {
                const std::size_t n =
                    static_cast<std::size_t>(job.offsets[i] - job.offsets[i - 1]);
                if (!ragged_row_fits_shared(n, job.opts, props, 1)) return true;
            }
            return false;
        }
        case JobKind::Pairs:
            return 2 * BufferPool::class_bytes(job_elements(job) * sizeof(float)) >
                       memory_budget_ ||
                   !ragged_row_fits_shared(job.array_size, job.opts, props, 2);
    }
    return false;
}

BufferPool::Lease Server::acquire_or_trim(std::size_t bytes) {
    // Cached idle ranges may be fragmenting the arena (or an injected
    // allocation fault fired): trim and retry per the configured policy
    // instead of the old single ad-hoc retry, recording each attempt and its
    // modeled backoff.
    const unsigned max_attempts = std::max(cfg_.retry.max_attempts, 1u);
    for (unsigned attempt = 1;; ++attempt) {
        try {
            return pool_.acquire(bytes);
        } catch (const simt::DeviceBadAlloc&) {
            if (attempt >= max_attempts) throw;
            pool_.trim();
            std::lock_guard lk(mutex_);
            ++stats_.alloc_retries;
            stats_.retry_backoff_ms += cfg_.retry.backoff_ms(attempt, bytes);
        }
    }
}

void Server::serve_batch(std::vector<PendingPtr> batch) {
    if (batch.size() == 1 && needs_cpu_fallback(batch.front()->job)) {
        run_cpu_fallback(*batch.front());
        return;
    }
    // Transient device errors (gas::resilient::transient — allocation
    // failures, refused launches, detected corruption, failed verification)
    // retry the whole batch: execute_* completes no promise and touches no
    // host buffer before it can throw, so each attempt re-stages clean data.
    // Exhausted retries quarantine every rider to a solo host re-sort; a
    // non-transient error (a real bug, e.g. SanitizeError) fails the batch.
    const unsigned max_attempts = std::max(cfg_.retry.max_attempts, 1u);
    for (unsigned attempt = 1;; ++attempt) {
        try {
            switch (batch.front()->job.kind) {
                case JobKind::Uniform: execute_uniform(batch); break;
                case JobKind::Ragged: execute_ragged(batch); break;
                case JobKind::Pairs: execute_pairs(batch); break;
            }
            return;
        } catch (const std::exception& e) {
            if (!gas::resilient::transient(e)) {
                fail_batch(batch, e.what());
                return;
            }
            if (attempt < max_attempts) {
                std::lock_guard lk(mutex_);
                ++stats_.retries;
                stats_.retry_backoff_ms +=
                    cfg_.retry.backoff_ms(attempt, batch.front()->id);
                continue;
            }
            for (auto& p : batch) run_cpu_fallback(*p, /*quarantined=*/true);
            return;
        }
    }
}

void Server::execute_uniform(std::vector<PendingPtr>& batch) {
    const auto service_start = Clock::now();
    const std::size_t n = batch.front()->job.array_size;
    std::size_t total_arrays = 0;
    std::vector<BatchSlice> slices;
    slices.reserve(batch.size());
    for (const auto& p : batch) {
        slices.push_back({total_arrays, p->arrays});
        total_arrays += p->arrays;
    }
    const std::size_t count = total_arrays * n;
    const std::size_t bytes = count * sizeof(float);

    const BufferPool::Lease lease = acquire_or_trim(bytes);
    try {
        auto view = simt::DeviceBuffer<float>::borrow(device_, lease.offset, count);
        auto dev = view.span();
        // Expected per-row checksums come from the host copies while staging
        // — ground truth no device fault can touch.
        std::vector<std::uint64_t> expected;
        if (cfg_.verify_responses) expected.reserve(total_arrays);
        std::size_t pos = 0;
        for (const auto& p : batch) {
            std::memcpy(dev.data() + pos, p->job.values.data(),
                        p->elements * sizeof(float));
            if (cfg_.verify_responses) {
                for (std::size_t a = 0; a < p->arrays; ++a) {
                    expected.push_back(resilient::row_checksum(std::span<const float>(
                        p->job.values.data() + a * n, n)));
                }
            }
            pos += p->elements;
        }
        const double h2d = device_.transfer_ms(bytes);

        Options opts = batch.front()->job.opts;
        opts.validate = cfg_.validate;
        opts.collect_bucket_sizes = false;
        opts.verify_output = false;  // the server verifies per request below
        const SortStats s = sort_uniform_batch_on_device(device_, view, slices,
                                                         total_arrays, n, opts);
        double kernel_ms = s.modeled_kernel_ms();

        std::vector<std::uint8_t> row_fail;
        if (cfg_.verify_responses) {
            row_fail.assign(total_arrays, 0);
            const auto vc = resilient::verify_rows_on_device<float>(
                device_, std::span<const float>(dev.data(), count), total_arrays, n,
                opts.order, expected, row_fail);
            kernel_ms += vc.modeled_ms;
        }

        // Copy back only verified requests; one with any failing row is
        // quarantined (its host buffer still holds the original input).
        std::vector<PendingPtr> served;
        std::vector<PendingPtr> quarantined;
        pos = 0;
        std::size_t served_bytes = 0;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            Pending& p = *batch[i];
            bool bad = false;
            for (std::size_t a = slices[i].first_array;
                 a < slices[i].first_array + slices[i].num_arrays; ++a) {
                bad |= !row_fail.empty() && row_fail[a] != 0;
            }
            if (!bad) {
                std::memcpy(p.job.values.data(), dev.data() + pos,
                            p.elements * sizeof(float));
                served_bytes += p.elements * sizeof(float);
            }
            pos += p.elements;
            (bad ? quarantined : served).push_back(std::move(batch[i]));
        }
        const double d2h = device_.transfer_ms(served_bytes);
        pool_.release(lease);
        if (!served.empty()) {
            finish_batch(served, h2d, d2h, kernel_ms, next_batch_id_++, service_start);
        }
        quarantine_failed(quarantined);
    } catch (...) {
        pool_.release(lease);
        throw;
    }
}

void Server::execute_ragged(std::vector<PendingPtr>& batch) {
    const auto service_start = Clock::now();
    std::size_t total_values = 0;
    std::size_t total_arrays = 0;
    std::vector<std::uint64_t> fused_offsets;
    std::vector<BatchSlice> slices;
    slices.reserve(batch.size());
    fused_offsets.push_back(0);
    for (const auto& p : batch) {
        slices.push_back({total_arrays, p->arrays});
        const std::uint64_t base = p->job.offsets.front();
        for (std::size_t i = 1; i < p->job.offsets.size(); ++i) {
            fused_offsets.push_back(total_values + (p->job.offsets[i] - base));
        }
        total_values += p->elements;
        total_arrays += p->arrays;
    }
    const std::size_t bytes = total_values * sizeof(float);

    const BufferPool::Lease lease = acquire_or_trim(bytes);
    try {
        auto view = simt::DeviceBuffer<float>::borrow(device_, lease.offset, total_values);
        auto dev = view.span();
        std::vector<std::uint64_t> expected;
        if (cfg_.verify_responses) expected.reserve(total_arrays);
        std::size_t pos = 0;
        for (const auto& p : batch) {
            std::memcpy(dev.data() + pos,
                        p->job.values.data() + p->job.offsets.front(),
                        p->elements * sizeof(float));
            if (cfg_.verify_responses) {
                const auto& off = p->job.offsets;
                for (std::size_t i = 1; i < off.size(); ++i) {
                    expected.push_back(resilient::row_checksum(std::span<const float>(
                        p->job.values.data() + off[i - 1],
                        static_cast<std::size_t>(off[i] - off[i - 1]))));
                }
            }
            pos += p->elements;
        }
        const double h2d = device_.transfer_ms(bytes);

        Options opts = batch.front()->job.opts;
        opts.validate = cfg_.validate;
        opts.collect_bucket_sizes = false;
        opts.verify_output = false;  // the server verifies per request below
        const SortStats s =
            sort_ragged_batch_on_device(device_, view, fused_offsets, slices, opts);
        double kernel_ms = s.modeled_kernel_ms();

        std::vector<std::uint8_t> row_fail;
        if (cfg_.verify_responses) {
            row_fail.assign(total_arrays, 0);
            // The ragged device path sorts ascending regardless of
            // opts.order (see sort_ragged_on_device); verify likewise.
            const auto vc = resilient::verify_csr_on_device<float>(
                device_, std::span<const float>(dev.data(), total_values), fused_offsets,
                SortOrder::Ascending, expected, row_fail);
            kernel_ms += vc.modeled_ms;
        }

        std::vector<PendingPtr> served;
        std::vector<PendingPtr> quarantined;
        pos = 0;
        std::size_t served_bytes = 0;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            Pending& p = *batch[i];
            bool bad = false;
            for (std::size_t a = slices[i].first_array;
                 a < slices[i].first_array + slices[i].num_arrays; ++a) {
                bad |= !row_fail.empty() && row_fail[a] != 0;
            }
            if (!bad) {
                std::memcpy(p.job.values.data() + p.job.offsets.front(), dev.data() + pos,
                            p.elements * sizeof(float));
                served_bytes += p.elements * sizeof(float);
            }
            pos += p.elements;
            (bad ? quarantined : served).push_back(std::move(batch[i]));
        }
        const double d2h = device_.transfer_ms(served_bytes);
        pool_.release(lease);
        if (!served.empty()) {
            finish_batch(served, h2d, d2h, kernel_ms, next_batch_id_++, service_start);
        }
        quarantine_failed(quarantined);
    } catch (...) {
        pool_.release(lease);
        throw;
    }
}

void Server::execute_pairs(std::vector<PendingPtr>& batch) {
    const auto service_start = Clock::now();
    const std::size_t n = batch.front()->job.array_size;
    std::size_t total_arrays = 0;
    std::vector<BatchSlice> slices;
    slices.reserve(batch.size());
    for (const auto& p : batch) {
        slices.push_back({total_arrays, p->arrays});
        total_arrays += p->arrays;
    }
    const std::size_t count = total_arrays * n;
    const std::size_t bytes = count * sizeof(float);

    const BufferPool::Lease key_lease = acquire_or_trim(bytes);
    BufferPool::Lease val_lease;
    try {
        val_lease = acquire_or_trim(bytes);
    } catch (...) {
        pool_.release(key_lease);
        throw;
    }
    try {
        auto keys = simt::DeviceBuffer<float>::borrow(device_, key_lease.offset, count);
        auto vals = simt::DeviceBuffer<float>::borrow(device_, val_lease.offset, count);
        auto kdev = keys.span();
        auto vdev = vals.span();
        std::vector<std::uint64_t> expected;
        if (cfg_.verify_responses) expected.reserve(total_arrays);
        std::size_t pos = 0;
        for (const auto& p : batch) {
            std::memcpy(kdev.data() + pos, p->job.values.data(),
                        p->elements * sizeof(float));
            std::memcpy(vdev.data() + pos, p->job.payload.data(),
                        p->elements * sizeof(float));
            if (cfg_.verify_responses) {
                for (std::size_t a = 0; a < p->arrays; ++a) {
                    expected.push_back(resilient::pair_row_checksum(
                        std::span<const float>(p->job.values.data() + a * n, n),
                        std::span<const float>(p->job.payload.data() + a * n, n)));
                }
            }
            pos += p->elements;
        }
        const double h2d = device_.transfer_ms(2 * bytes);

        Options opts = batch.front()->job.opts;
        opts.validate = cfg_.validate;
        opts.collect_bucket_sizes = false;
        opts.verify_output = false;  // the server verifies per request below
        const SortStats s = sort_pair_batch_on_device(device_, keys, vals, slices,
                                                      total_arrays, n, opts);
        double kernel_ms = s.modeled_kernel_ms();

        std::vector<std::uint8_t> row_fail;
        if (cfg_.verify_responses) {
            row_fail.assign(total_arrays, 0);
            const auto vc = resilient::verify_pair_rows_on_device<float>(
                device_, std::span<const float>(kdev.data(), count),
                std::span<const float>(vdev.data(), count), total_arrays, n, opts.order,
                expected, row_fail);
            kernel_ms += vc.modeled_ms;
        }

        std::vector<PendingPtr> served;
        std::vector<PendingPtr> quarantined;
        pos = 0;
        std::size_t served_bytes = 0;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            Pending& p = *batch[i];
            bool bad = false;
            for (std::size_t a = slices[i].first_array;
                 a < slices[i].first_array + slices[i].num_arrays; ++a) {
                bad |= !row_fail.empty() && row_fail[a] != 0;
            }
            if (!bad) {
                std::memcpy(p.job.values.data(), kdev.data() + pos,
                            p.elements * sizeof(float));
                std::memcpy(p.job.payload.data(), vdev.data() + pos,
                            p.elements * sizeof(float));
                served_bytes += 2 * p.elements * sizeof(float);
            }
            pos += p.elements;
            (bad ? quarantined : served).push_back(std::move(batch[i]));
        }
        const double d2h = device_.transfer_ms(served_bytes);
        pool_.release(key_lease);
        pool_.release(val_lease);
        if (!served.empty()) {
            finish_batch(served, h2d, d2h, kernel_ms, next_batch_id_++, service_start);
        }
        quarantine_failed(quarantined);
    } catch (...) {
        pool_.release(key_lease);
        pool_.release(val_lease);
        throw;
    }
}

void Server::quarantine_failed(std::vector<PendingPtr>& victims) {
    if (victims.empty()) return;
    {
        std::lock_guard lk(mutex_);
        stats_.verify_failures += victims.size();
    }
    // The suspect device bytes were never copied back: each victim re-sorts
    // alone on the host from its original input.
    for (auto& p : victims) run_cpu_fallback(*p, /*quarantined=*/true);
}

void Server::run_cpu_fallback(Pending& p, bool quarantined) {
    const auto service_start = Clock::now();
    Job& job = p.job;
    const KeyLess less{job.opts.order == SortOrder::Descending};
    switch (job.kind) {
        case JobKind::Uniform:
            for (std::size_t a = 0; a < job.num_arrays; ++a) {
                auto* row = job.values.data() + a * job.array_size;
                std::sort(row, row + job.array_size, less);
            }
            break;
        case JobKind::Ragged:
            for (std::size_t i = 1; i < job.offsets.size(); ++i) {
                std::sort(job.values.data() + job.offsets[i - 1],
                          job.values.data() + job.offsets[i], less);
            }
            break;
        case JobKind::Pairs:
            for (std::size_t a = 0; a < job.num_arrays; ++a) {
                const std::size_t base = a * job.array_size;
                std::vector<std::pair<float, float>> row(job.array_size);
                for (std::size_t i = 0; i < job.array_size; ++i) {
                    row[i] = {job.values[base + i], job.payload[base + i]};
                }
                // Stable by key: ties keep submit order (the device path
                // leaves ties unspecified; fallback picks the deterministic
                // choice).
                std::stable_sort(row.begin(), row.end(),
                                 [&](const auto& x, const auto& y) {
                                     return less(x.first, y.first);
                                 });
                for (std::size_t i = 0; i < job.array_size; ++i) {
                    job.values[base + i] = row[i].first;
                    job.payload[base + i] = row[i].second;
                }
            }
            break;
    }
    const auto now = Clock::now();

    Response r;
    r.status = Status::Ok;
    r.cpu_fallback = true;
    r.batch_requests = 1;
    r.queue_ms = ms_between(p.submitted_at, service_start);
    r.service_ms = ms_between(service_start, now);
    r.values = std::move(job.values);
    r.payload = std::move(job.payload);

    {
        std::lock_guard lk(mutex_);
        ++stats_.completed;
        ++stats_.cpu_fallbacks;
        if (quarantined) ++stats_.quarantined;
        stats_.wall_service_ms += r.service_ms;
        queue_wait_digest_.record(r.queue_ms);
        wall_digest_.record(r.queue_ms + r.service_ms);
        modeled_digest_.record(0.0);
        snapshot_pool_stats();
    }
    p.promise.set_value(std::move(r));
}

void Server::fail_batch(std::vector<PendingPtr>& batch, const std::string& why) {
    {
        std::lock_guard lk(mutex_);
        stats_.failed += batch.size();
    }
    for (auto& p : batch) {
        Response r;
        r.status = Status::Failed;
        r.error = why;
        r.values = std::move(p->job.values);
        r.payload = std::move(p->job.payload);
        p->promise.set_value(std::move(r));
    }
}

void Server::finish_batch(std::vector<PendingPtr>& batch, double h2d_ms, double d2h_ms,
                          double kernel_ms, std::uint64_t batch_id,
                          Clock::time_point service_start) {
    const std::size_t stream = static_cast<std::size_t>(batch_id - 1) %
                               timeline_.stream_count();
    timeline_.h2d(stream, h2d_ms);
    timeline_.compute(stream, kernel_ms);
    timeline_.d2h(stream, d2h_ms);

    const auto now = Clock::now();
    const double service_ms = ms_between(service_start, now);
    std::size_t total_elements = 0;
    std::size_t total_arrays = 0;
    for (const auto& p : batch) {
        total_elements += p->elements;
        total_arrays += p->arrays;
    }

    std::vector<Response> responses(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        Pending& p = *batch[i];
        Response& r = responses[i];
        r.status = Status::Ok;
        r.batch_id = batch_id;
        r.batch_requests = batch.size();
        r.queue_ms = ms_between(p.submitted_at, service_start);
        r.service_ms = service_ms;
        const double share = total_elements > 0
                                 ? static_cast<double>(p.elements) /
                                       static_cast<double>(total_elements)
                                 : 0.0;
        r.modeled_ms = (h2d_ms + kernel_ms + d2h_ms) * share;
        r.values = std::move(p.job.values);
        r.payload = std::move(p.job.payload);
    }

    {
        std::lock_guard lk(mutex_);
        stats_.completed += batch.size();
        ++stats_.batches;
        stats_.batched_requests += batch.size();
        stats_.fused_arrays += total_arrays;
        stats_.modeled_kernel_ms += kernel_ms;
        stats_.modeled_h2d_ms += h2d_ms;
        stats_.modeled_d2h_ms += d2h_ms;
        stats_.wall_service_ms += service_ms;
        stats_.modeled_overlap_ms = timeline_.elapsed_ms();
        stats_.modeled_serial_ms = timeline_.serialized_ms();
        stats_.h2d_busy_ms = timeline_.h2d_busy_ms();
        stats_.compute_busy_ms = timeline_.compute_busy_ms();
        stats_.d2h_busy_ms = timeline_.d2h_busy_ms();
        stats_.h2d_utilization = timeline_.h2d_utilization();
        stats_.compute_utilization = timeline_.compute_utilization();
        stats_.d2h_utilization = timeline_.d2h_utilization();
        for (const Response& r : responses) {
            queue_wait_digest_.record(r.queue_ms);
            wall_digest_.record(r.queue_ms + r.service_ms);
            modeled_digest_.record(r.modeled_ms);
        }
        snapshot_pool_stats();
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i]->promise.set_value(std::move(responses[i]));
    }
}

void Server::snapshot_pool_stats() { stats_.pool = pool_.stats(); }

ServerStats Server::stats() const {
    std::lock_guard lk(mutex_);
    ServerStats s = stats_;
    s.queue_depth = queued_;
    s.queue_wait_ms = summarize(queue_wait_digest_);
    s.wall_ms = summarize(wall_digest_);
    s.modeled_ms = summarize(modeled_digest_);
    return s;
}

}  // namespace gas::serve
