#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/batch.hpp"
#include "health/probe.hpp"
#include "tune/ewma.hpp"

namespace gas::serve {

namespace {

double ms_between(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Two jobs can share a fused batch: same kind, same uniform geometry, and
/// the same sort-shaping options (anything that changes splitters, bucketing
/// or phase-3 behaviour).  validate/collect_bucket_sizes are server-owned
/// and deliberately excluded.  auto_tune IS included: the controller retunes
/// a whole batch at once, so a request that opted out must never ride a
/// batch whose effective options the controller may reshape.
bool compatible(const Job& a, const Job& b) {
    if (a.kind != b.kind) return false;
    if (a.kind != JobKind::Ragged && a.array_size != b.array_size) return false;
    const Options& x = a.opts;
    const Options& y = b.opts;
    return x.bucket_target == y.bucket_target && x.sampling_rate == y.sampling_rate &&
           x.strategy == y.strategy && x.order == y.order &&
           x.threads_per_bucket == y.threads_per_bucket &&
           x.hybrid_phase3 == y.hybrid_phase3 &&
           x.phase3_small_cutoff == y.phase3_small_cutoff &&
           x.phase3_bitonic_cutoff == y.phase3_bitonic_cutoff &&
           x.auto_tune == y.auto_tune;
}

/// Queue-depth EWMA update (DeviceBreakdown::queue_depth_ewma), sampled at
/// every enqueue and batch take.
void sample_queue_depth(DeviceBreakdown& d, std::size_t depth) {
    constexpr double kAlpha = 0.2;
    d.queue_depth_ewma =
        tune::ewma_step(d.queue_depth_ewma, static_cast<double>(depth), kAlpha);
}

/// FNV-1a over a response's byte content (values + payload bit patterns):
/// the hedging winner/loser comparison.  Any divergence between a primary
/// and its hedge is a correctness bug (hedge_mismatches must stay 0).
std::uint64_t hash_bytes(const std::vector<float>& values,
                         const std::vector<float>& payload) {
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const std::vector<float>& v) {
        for (const float f : v) {
            std::uint32_t bits = 0;
            std::memcpy(&bits, &f, sizeof(bits));
            h ^= bits;
            h *= 1099511628211ull;
        }
    };
    mix(values);
    mix(payload);
    return h;
}

bool expired(const Job& job, Clock::time_point now) {
    return job.deadline.has_value() && *job.deadline <= now;
}

std::size_t job_arrays(const Job& job) {
    if (job.kind == JobKind::Ragged) {
        return job.offsets.size() < 2 ? 0 : job.offsets.size() - 1;
    }
    return job.num_arrays;
}

std::size_t job_elements(const Job& job) {
    if (job.kind == JobKind::Ragged) {
        return job.offsets.size() < 2
                   ? 0
                   : static_cast<std::size_t>(job.offsets.back() - job.offsets.front());
    }
    return job.num_arrays * job.array_size;
}

void validate_job(const Job& job) {
    switch (job.kind) {
        case JobKind::Uniform:
            if (job.values.size() < job.num_arrays * job.array_size) {
                throw std::invalid_argument("serve: uniform job values smaller than N x n");
            }
            break;
        case JobKind::Pairs:
            if (job.values.size() < job.num_arrays * job.array_size ||
                job.payload.size() < job.num_arrays * job.array_size) {
                throw std::invalid_argument("serve: pair job buffers smaller than N x n");
            }
            break;
        case JobKind::Ragged: {
            for (std::size_t i = 1; i < job.offsets.size(); ++i) {
                if (job.offsets[i] < job.offsets[i - 1]) {
                    throw std::invalid_argument("serve: ragged offsets not ascending");
                }
            }
            if (!job.offsets.empty() && job.values.size() < job.offsets.back()) {
                throw std::invalid_argument("serve: ragged values smaller than offsets");
            }
            break;
        }
    }
}

/// FNV-1a content fingerprint + sampled key hint, computed once per request.
/// The fingerprint mixes shape and up to 32 sampled value bit patterns, so
/// ConsistentHash gives the same content the same device; the key hint is
/// the sampled mean, KeyRange's position in the key domain.
fleet::RouteInfo make_route_info(const Job& job, std::size_t elements) {
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(static_cast<std::uint64_t>(job.kind));
    mix(job.num_arrays);
    mix(job.array_size);
    mix(job.values.size());
    mix(job.offsets.size());
    double key_sum = 0.0;
    std::size_t sampled = 0;
    if (!job.values.empty()) {
        const std::size_t stride = std::max<std::size_t>(1, job.values.size() / 32);
        for (std::size_t i = 0; i < job.values.size(); i += stride) {
            std::uint32_t bits = 0;
            std::memcpy(&bits, &job.values[i], sizeof(bits));
            mix(bits);
            key_sum += static_cast<double>(job.values[i]);
            ++sampled;
        }
    }
    fleet::RouteInfo info;
    info.fingerprint = h;
    info.key_hint = sampled > 0 ? key_sum / static_cast<double>(sampled) : 0.0;
    if (!std::isfinite(info.key_hint)) info.key_hint = 0.0;
    info.elements = elements;
    return info;
}

/// Host comparison mirroring the device's key order.
struct KeyLess {
    bool descending = false;
    bool operator()(float a, float b) const { return descending ? a > b : a < b; }
};

}  // namespace

Server::Shard::Shard(std::size_t idx, simt::Device& dev, unsigned streams,
                     double safety_factor)
    : index(idx),
      device(&dev),
      memory_budget(static_cast<std::size_t>(
          static_cast<double>(dev.memory().capacity()) * safety_factor)),
      pool(dev.memory()),
      timeline(std::max(1u, streams)) {
    breakdown.name = "dev" + std::to_string(idx);
    // Engine stalls from an injected fault plan (simt::faults) show up in the
    // overlap model; plans installed after construction still apply.
    timeline.attach_faults(dev);
}

Server::Server(simt::Device& device, ServerConfig cfg)
    : Server(cfg, nullptr, std::make_unique<gas::fleet::DeviceFleet>(device)) {}

Server::Server(gas::fleet::DeviceFleet& devices, ServerConfig cfg)
    : Server(cfg, &devices, nullptr) {}

Server::Server(ServerConfig cfg, gas::fleet::DeviceFleet* f,
               std::unique_ptr<gas::fleet::DeviceFleet> owned)
    : owned_fleet_(std::move(owned)),
      fleet_(f != nullptr ? f : owned_fleet_.get()),
      cfg_(cfg),
      router_(cfg.route_policy, fleet_->size(), cfg.key_space_max),
      controller_(gas::tune::Controller::Config{cfg.auto_tune}) {
    if (cfg_.num_streams == 0) {
        throw std::invalid_argument("serve::Server: 0 streams");
    }
    if (cfg_.max_batch_requests == 0 || cfg_.max_batch_arrays == 0) {
        throw std::invalid_argument("serve::Server: batch ceilings must be >= 1");
    }
    if (!(cfg_.memory_safety_factor > 0.0) || cfg_.memory_safety_factor > 1.0) {
        throw std::invalid_argument("serve::Server: memory_safety_factor must be in (0, 1]");
    }
    shards_.reserve(fleet_->size());
    for (std::size_t i = 0; i < fleet_->size(); ++i) {
        shards_.push_back(std::make_unique<Shard>(i, fleet_->device(i), cfg_.num_streams,
                                                  cfg_.memory_safety_factor));
    }
    if (cfg_.health.enabled) {
        const gas::health::Machine::Config mc{
            cfg_.health.probe_passes, cfg_.health.probation_batches,
            cfg_.health.degraded_clear_batches, cfg_.health.degraded_weight,
            cfg_.health.probation_base_weight};
        brownout_ = gas::health::Brownout(
            {cfg_.health.brownout_l1, cfg_.health.brownout_l2, cfg_.health.brownout_l3,
             cfg_.health.brownout_hysteresis});
        for (auto& s : shards_) {
            s->health = gas::health::Machine(mc);
            Shard* sp = s.get();
            // Hung launches (simt fault injection, or a real stall in a live
            // backend) poll this handler.  Async mode waits for the watchdog
            // to flag the stall; manual_pump has no watchdog thread, so the
            // hang aborts deterministically on the first poll.
            s->device->set_hang_handler([this, sp] {
                if (cfg_.manual_pump) {
                    std::lock_guard lk(mutex_);
                    ++hstats_.hangs_detected;
                    return simt::Device::HangAction::Abort;
                }
                return sp->stall_flag.load(std::memory_order_relaxed)
                           ? simt::Device::HangAction::Abort
                           : simt::Device::HangAction::Wait;
            });
        }
    }
    if (!cfg_.manual_pump) {
        for (auto& s : shards_) {
            s->scheduler = std::thread(&Server::scheduler_main, this, std::ref(*s));
        }
        if (cfg_.health.enabled) {
            watchdog_ = std::thread(&Server::watchdog_main, this);
        }
    }
}

Server::~Server() { stop(/*cancel_pending=*/false); }

Server::Ticket Server::submit(Job job) {
    validate_job(job);
    const auto now = Clock::now();

    auto pending = std::make_unique<Pending>();
    pending->job = std::move(job);
    pending->submitted_at = now;
    pending->arrays = job_arrays(pending->job);
    pending->elements = job_elements(pending->job);
    pending->rinfo = make_route_info(pending->job, pending->elements);
    // Distribution sketch, taken outside the lock on the host copy.  Pair
    // jobs are never sketched: their key-equal payload order is
    // plan-dependent, so the controller must not reshape them.
    if (cfg_.auto_tune && pending->job.opts.auto_tune && pending->elements > 0 &&
        pending->job.kind != JobKind::Pairs) {
        if (pending->job.kind == JobKind::Ragged) {
            pending->sketch = tune::sketch_ragged(pending->job.values,
                                                  pending->job.offsets,
                                                  cfg_.key_space_max);
        } else {
            pending->sketch =
                tune::sketch_values(pending->job.values, pending->job.num_arrays,
                                    pending->job.array_size, cfg_.key_space_max);
        }
        pending->sketch_ms =
            tune::modeled_sketch_ms(pending->sketch, fleet_->device(0).props());
    }

    Ticket ticket;
    ticket.result = pending->promise.get_future();

    auto respond = [&](Status status, const char* why) {
        Response r;
        r.status = status;
        r.error = why;
        r.backpressure = pending->backpressure;
        r.values = std::move(pending->job.values);
        r.payload = std::move(pending->job.payload);
        pending->promise.set_value(std::move(r));
    };

    PendingPtr shed_victim;  ///< overflow-shed casualty, completed after unlock
    std::unique_lock lk(mutex_);
    pending->id = next_id_++;
    ticket.id = pending->id;
    ++stats_.submitted;
    pending->backpressure =
        cfg_.queue_capacity > 0
            ? static_cast<double>(queued_) / static_cast<double>(cfg_.queue_capacity)
            : 1.0;

    if (stopping_) {
        ++stats_.rejected;
        lk.unlock();
        respond(Status::Rejected, "server stopped");
        return ticket;
    }
    if (expired(pending->job, now)) {
        ++stats_.timed_out;
        lk.unlock();
        respond(Status::TimedOut, "deadline expired at submit");
        return ticket;
    }
    if (pending->elements == 0) {  // nothing to sort: complete right away
        ++stats_.accepted;
        ++stats_.completed;
        lk.unlock();
        respond(Status::Ok, "");
        return ticket;
    }
    if (cfg_.queue_capacity == 0) {
        ++stats_.rejected;
        lk.unlock();
        respond(Status::Rejected, "queue capacity is 0");
        return ticket;
    }
    // Brownout L3: incoming low-priority work sheds immediately — a typed
    // rejection the caller can back off on, instead of queueing work the
    // ladder says cannot be served in time.
    if (cfg_.health.enabled && cfg_.health.shed_enabled && brownout_.level() >= 3 &&
        pending->job.priority == Priority::Low) {
        ++stats_.shed;
        ++hstats_.shed_brownout;
        lk.unlock();
        respond(Status::Shed, "shed: brownout (low priority)");
        return ticket;
    }
    if (queued_ >= cfg_.queue_capacity) {
        if (cfg_.health.enabled && cfg_.health.shed_enabled) {
            // Overload protection replaces Block/Reject: drop the oldest
            // queued request of the least important class at or below the
            // newcomer's priority.  When everything queued outranks the
            // newcomer, the newcomer itself is the drop.
            if (!shed_for_admission_locked(pending->job.priority, shed_victim)) {
                ++stats_.shed;
                ++hstats_.shed_overflow;
                lk.unlock();
                respond(Status::Shed, "shed: queue full");
                return ticket;
            }
            ++stats_.shed;
            ++hstats_.shed_overflow;
        } else if (cfg_.policy == AdmitPolicy::Reject || cfg_.manual_pump) {
            ++stats_.rejected;
            lk.unlock();
            respond(Status::Rejected, "queue full");
            return ticket;
        } else {
            space_cv_.wait(lk,
                           [&] { return queued_ < cfg_.queue_capacity || stopping_; });
            if (stopping_) {
                ++stats_.rejected;
                lk.unlock();
                respond(Status::Rejected, "server stopped");
                return ticket;
            }
        }
    }

    ++stats_.accepted;
    stats_.tune_sketch_ms += pending->sketch_ms;
    Shard& shard = *shards_[route_locked(*pending)];
    ++shard.breakdown.routed;
    ++shard.queued;
    shard.queued_elements += pending->elements;
    shard.queue[static_cast<std::size_t>(pending->job.priority)].push_back(
        std::move(pending));
    ++queued_;
    sample_load_locked(shard);
    update_brownout_locked();
    stats_.queue_peak = std::max(stats_.queue_peak, queued_);
    lk.unlock();
    if (shed_victim) finish_shed(std::move(shed_victim), "shed: displaced under overload");
    // All shard schedulers share one cv; wake them all so the routed (or a
    // steal-capable) one runs.
    queue_cv_.notify_all();
    return ticket;
}

std::size_t Server::route_locked(const Pending& p) const {
    std::vector<fleet::ShardLoad> loads;
    loads.reserve(shards_.size());
    for (const auto& s : shards_) {
        fleet::ShardLoad l;
        l.queued_elements = s->queued_elements;
        l.live = !s->quarantined;
        l.eligible = l.live && !needs_cpu_fallback(*s, p.job);
        if (cfg_.health.enabled) {
            // Anti-flap ranking + probation/degraded traffic shaping; with
            // health off the ShardLoad defaults reproduce raw ranking.
            l.smoothed_load = s->load_ewma;
            l.weight = s->health.route_weight();
        }
        loads.push_back(l);
    }
    const std::size_t target = router_.route(p.rinfo, loads);
    // The all-devices-lost sentinel is unreachable (the last live device is
    // never quarantined); hash-spread defensively if it ever shows up — a
    // quarantined shard's scheduler host-serves its queue.
    return target < shards_.size()
               ? target
               : static_cast<std::size_t>(p.rinfo.fingerprint % shards_.size());
}

bool Server::steal_candidate_locked(const Shard& thief) const {
    if (cfg_.max_steal_requests == 0 || thief.quarantined || thief.queued > 0) {
        return false;
    }
    for (const auto& sp : shards_) {
        const Shard& victim = *sp;
        if (&victim == &thief || victim.queued == 0) continue;
        for (const auto& q : victim.queue) {
            if (!q.empty() && !needs_cpu_fallback(thief, q.back()->job)) return true;
        }
    }
    return false;
}

std::size_t Server::steal_into_locked(Shard& thief) {
    if (cfg_.max_steal_requests == 0 || thief.quarantined || thief.queued > 0) {
        return 0;
    }
    // Victims in descending load order; one victim supplies the whole steal.
    std::vector<Shard*> victims;
    for (auto& sp : shards_) {
        if (sp.get() != &thief && sp->queued > 0) victims.push_back(sp.get());
    }
    std::sort(victims.begin(), victims.end(), [](const Shard* a, const Shard* b) {
        return a->queued_elements > b->queued_elements;
    });
    std::size_t moved = 0;
    for (Shard* victim : victims) {
        // Take from the back of the lowest-priority queues first: the work
        // the victim would reach last is the cheapest to relocate.
        for (std::size_t pr = kPriorities; pr-- > 0;) {
            auto& q = victim->queue[pr];
            while (!q.empty() && moved < cfg_.max_steal_requests &&
                   !needs_cpu_fallback(thief, q.back()->job)) {
                PendingPtr p = std::move(q.back());
                q.pop_back();
                --victim->queued;
                victim->queued_elements -= p->elements;
                ++victim->breakdown.steals_out;
                ++thief.queued;
                thief.queued_elements += p->elements;
                ++thief.breakdown.steals_in;
                thief.queue[pr].push_back(std::move(p));
                ++stats_.steals;
                ++moved;
            }
        }
        if (moved > 0) break;
    }
    return moved;
}

bool Server::cancel(std::uint64_t id) {
    PendingPtr victim;
    {
        std::lock_guard lk(mutex_);
        for (auto& sp : shards_) {
            for (auto& q : sp->queue) {
                for (auto it = q.begin(); it != q.end(); ++it) {
                    if ((*it)->id == id) {
                        victim = std::move(*it);
                        q.erase(it);
                        --sp->queued;
                        sp->queued_elements -= victim->elements;
                        --queued_;
                        ++stats_.cancelled;
                        break;
                    }
                }
                if (victim) break;
            }
            if (victim) break;
        }
        if (victim && stopping_ && queued_ == 0) queue_cv_.notify_all();
    }
    if (!victim) return false;
    space_cv_.notify_one();
    Response r;
    r.status = Status::Cancelled;
    r.error = "cancelled";
    r.backpressure = victim->backpressure;
    r.values = std::move(victim->job.values);
    r.payload = std::move(victim->job.payload);
    resolve(*victim, std::move(r));
    return true;
}

void Server::drain() {
    if (cfg_.manual_pump) {
        pump();
        return;
    }
    std::unique_lock lk(mutex_);
    idle_cv_.wait(lk, [&] { return queued_ == 0 && in_flight_ == 0; });
}

void Server::stop(bool cancel_pending) {
    {
        std::lock_guard lk(mutex_);
        bool any_joinable = false;
        for (const auto& s : shards_) any_joinable |= s->scheduler.joinable();
        if (stopping_ && !any_joinable && queued_ == 0) return;
        stopping_ = true;
        cancel_pending_ = cancel_pending;
    }
    queue_cv_.notify_all();
    space_cv_.notify_all();
    watchdog_cv_.notify_all();
    if (watchdog_.joinable()) watchdog_.join();
    bool joined = false;
    for (auto& s : shards_) {
        if (s->scheduler.joinable()) {
            s->scheduler.join();
            joined = true;
        }
    }
    if (!joined && cfg_.manual_pump && !cancel_pending) {
        // Graceful manual stop: serve what is still queued.
        while (pump() > 0) {}
    }
    // Cancel anything left (async cancel_pending exits the schedulers with
    // the queues intact; manual cancel_pending never served them).
    std::vector<PendingPtr> leftovers;
    {
        std::lock_guard lk(mutex_);
        for (auto& sp : shards_) {
            for (auto& q : sp->queue) {
                for (auto& p : q) leftovers.push_back(std::move(p));
                q.clear();
            }
            sp->queued = 0;
            sp->queued_elements = 0;
        }
        queued_ = 0;
        for (const auto& p : leftovers) {
            if (!p->is_hedge) ++stats_.cancelled;
        }
    }
    for (auto& p : leftovers) {
        Response r;
        r.status = Status::Cancelled;
        r.error = "server stopped with request still queued";
        r.backpressure = p->backpressure;
        r.values = std::move(p->job.values);
        r.payload = std::move(p->job.payload);
        resolve(*p, std::move(r));
    }
    if (cfg_.health.enabled) {
        // The handlers capture `this`; drop them before the server goes away
        // (the devices outlive it).  No launches are possible here — the
        // schedulers are joined and manual mode has no other device toucher.
        for (auto& s : shards_) s->device->set_hang_handler({});
    }
    idle_cv_.notify_all();
}

std::size_t Server::pump() {
    if (!cfg_.manual_pump) {
        throw std::logic_error("serve::Server::pump: server runs its own scheduler threads");
    }
    // One probe per quarantined shard per pump() call: the deterministic
    // stand-in for the async probe timer.  Probes run before serving so a
    // freshly re-admitted (Probation) shard participates in this pump.
    if (cfg_.health.enabled) {
        for (auto& sp : shards_) {
            bool probe = false;
            {
                std::lock_guard lk(mutex_);
                probe = sp->quarantined;
            }
            if (probe) run_probe_cycle(*sp);
        }
    }
    std::size_t retired = 0;
    for (;;) {
        // One batch per shard per pass mirrors the scheduler-thread cadence:
        // shards drain their own queues in lockstep (overlapping in the
        // model), and an empty shard steals before going idle.
        std::size_t pass = 0;
        for (auto& sp : shards_) {
            Shard& shard = *sp;
            std::vector<PendingPtr> timed_out;
            std::vector<PendingPtr> sojourn_shed;
            std::vector<PendingPtr> batch;
            {
                std::lock_guard lk(mutex_);
                if (shard.queued == 0) steal_into_locked(shard);
                batch = take_batch(shard, timed_out, sojourn_shed);
            }
            if (batch.empty() && timed_out.empty() && sojourn_shed.empty()) continue;
            pass += batch.size() + timed_out.size() + sojourn_shed.size();
            for (auto& p : timed_out) {
                Response r;
                r.status = Status::TimedOut;
                r.error = "deadline expired in queue";
                r.backpressure = p->backpressure;
                r.values = std::move(p->job.values);
                r.payload = std::move(p->job.payload);
                {
                    std::lock_guard lk(mutex_);
                    if (!p->is_hedge) ++stats_.timed_out;
                }
                resolve(*p, std::move(r));
            }
            for (auto& p : sojourn_shed) {
                finish_shed(std::move(p), "shed: queue sojourn over bound");
            }
            if (!batch.empty()) serve_batch(shard, std::move(batch));
        }
        if (pass == 0) break;
        retired += pass;
    }
    return retired;
}

void Server::scheduler_main(Shard& shard) {
    std::unique_lock lk(mutex_);
    for (;;) {
        if (cfg_.health.enabled && shard.quarantined &&
            !(stopping_ && (cancel_pending_ || queued_ == 0))) {
            // Quarantined: nothing is routed here, so instead of parking on
            // the work predicate, wake on the probe timer and run seeded
            // probe sorts until the state machine re-admits the device.
            queue_cv_.wait_for(lk, std::chrono::duration<double, std::milli>(
                                       cfg_.health.probe_interval_ms));
            if (stopping_ && (cancel_pending_ || queued_ == 0)) break;
            if (shard.quarantined) {
                lk.unlock();
                run_probe_cycle(shard);
                lk.lock();
            }
            continue;
        }
        queue_cv_.wait(lk, [&] {
            if (stopping_ && (cancel_pending_ || queued_ == 0)) return true;
            if (cfg_.health.enabled && shard.quarantined) return true;  // go probe
            return shard.queued > 0 || steal_candidate_locked(shard);
        });
        if (stopping_ && (cancel_pending_ || queued_ == 0)) break;
        if (cfg_.health.enabled && shard.quarantined) continue;
        if (shard.queued == 0 && steal_into_locked(shard) == 0) continue;
        if (cfg_.linger_us > 0.0 && !stopping_ &&
            shard.queued < cfg_.max_batch_requests &&
            !(cfg_.health.enabled && brownout_.level() >= 2)) {
            // Best-effort coalescing window: let a concurrent burst land
            // before the batch is closed.  Brownout L2+ skips it — shrink
            // the coalescing window, serve what is here now.
            queue_cv_.wait_for(lk, std::chrono::duration<double, std::micro>(cfg_.linger_us));
        }
        std::vector<PendingPtr> timed_out;
        std::vector<PendingPtr> sojourn_shed;
        auto batch = take_batch(shard, timed_out, sojourn_shed);
        shard.in_flight = batch.size();
        in_flight_ += batch.size();
        lk.unlock();
        space_cv_.notify_all();

        for (auto& p : timed_out) {
            Response r;
            r.status = Status::TimedOut;
            r.error = "deadline expired in queue";
            r.backpressure = p->backpressure;
            r.values = std::move(p->job.values);
            r.payload = std::move(p->job.payload);
            {
                std::lock_guard slk(mutex_);
                if (!p->is_hedge) ++stats_.timed_out;
            }
            resolve(*p, std::move(r));
        }
        for (auto& p : sojourn_shed) {
            finish_shed(std::move(p), "shed: queue sojourn over bound");
        }
        if (!batch.empty()) serve_batch(shard, std::move(batch));

        lk.lock();
        in_flight_ -= shard.in_flight;
        shard.in_flight = 0;
        if (queued_ == 0 && in_flight_ == 0) idle_cv_.notify_all();
        // Wake peers blocked on the stop predicate once the last queued
        // request retires (their own queues are empty; no notify would come).
        if (stopping_ && queued_ == 0) queue_cv_.notify_all();
    }
}

std::vector<Server::PendingPtr> Server::take_batch(Shard& shard,
                                                   std::vector<PendingPtr>& timed_out,
                                                   std::vector<PendingPtr>& shed) {
    const auto now = Clock::now();
    std::vector<PendingPtr> batch;

    // Brownout L2+: quartered batch ceiling — smaller batches retire sooner,
    // trading fusion efficiency for latency under pressure.  CoDel-style
    // sojourn shedding of low-priority work also arms here (async mode only:
    // the bound is wall-clock, so manual_pump skips it for determinism).
    const bool browned = cfg_.health.enabled && brownout_.level() >= 2;
    const std::size_t max_requests =
        browned ? std::max<std::size_t>(1, cfg_.max_batch_requests / 4)
                : cfg_.max_batch_requests;
    const bool sojourn_shedding =
        browned && cfg_.health.shed_enabled && !cfg_.manual_pump;
    auto over_sojourn = [&](const Pending& p) {
        return sojourn_shedding && p.job.priority == Priority::Low &&
               ms_between(p.submitted_at, now) > cfg_.health.shed_sojourn_ms;
    };

    // Head: first live request in priority order.
    for (auto& q : shard.queue) {
        while (!q.empty() && batch.empty()) {
            PendingPtr head = std::move(q.front());
            q.pop_front();
            --shard.queued;
            shard.queued_elements -= head->elements;
            --queued_;
            if (expired(head->job, now)) {
                timed_out.push_back(std::move(head));
            } else if (over_sojourn(*head)) {
                if (!head->is_hedge) ++stats_.shed;
                ++hstats_.shed_sojourn;
                shed.push_back(std::move(head));
            } else {
                batch.push_back(std::move(head));
            }
        }
        if (!batch.empty()) break;
    }
    if (batch.empty()) {
        sample_load_locked(shard);
        return batch;
    }

    const Job& head = batch.front()->job;
    // A fallback-bound request is served alone: it never joins a device
    // batch and nothing can ride with it.
    if (needs_cpu_fallback(shard, head)) return batch;

    std::size_t total_arrays = batch.front()->arrays;
    std::size_t total_elements = batch.front()->elements;

    auto fits_memory = [&](std::size_t arrays, std::size_t elements) {
        switch (head.kind) {
            case JobKind::Uniform:
                return batch_footprint_bytes(arrays, head.array_size, head.opts,
                                             shard.device->props(), 1) <=
                       shard.memory_budget;
            case JobKind::Ragged:
                return BufferPool::class_bytes(elements * sizeof(float)) <=
                       shard.memory_budget;
            case JobKind::Pairs:
                return 2 * BufferPool::class_bytes(elements * sizeof(float)) <=
                       shard.memory_budget;
        }
        return false;
    };

    for (auto& q : shard.queue) {
        auto it = q.begin();
        while (it != q.end() && batch.size() < max_requests) {
            Pending& cand = **it;
            if (expired(cand.job, now)) {
                timed_out.push_back(std::move(*it));
                it = q.erase(it);
                --shard.queued;
                shard.queued_elements -= timed_out.back()->elements;
                --queued_;
                continue;
            }
            if (over_sojourn(cand)) {
                if (!cand.is_hedge) ++stats_.shed;
                ++hstats_.shed_sojourn;
                shed.push_back(std::move(*it));
                it = q.erase(it);
                --shard.queued;
                shard.queued_elements -= shed.back()->elements;
                --queued_;
                continue;
            }
            if (!compatible(head, cand.job) || needs_cpu_fallback(shard, cand.job) ||
                total_arrays + cand.arrays > cfg_.max_batch_arrays ||
                !fits_memory(total_arrays + cand.arrays, total_elements + cand.elements)) {
                ++it;  // stays queued; will head its own batch later
                continue;
            }
            total_arrays += cand.arrays;
            total_elements += cand.elements;
            batch.push_back(std::move(*it));
            it = q.erase(it);
            --shard.queued;
            shard.queued_elements -= batch.back()->elements;
            --queued_;
        }
        if (batch.size() >= max_requests) break;
    }
    sample_load_locked(shard);
    update_brownout_locked();
    return batch;
}

bool Server::needs_cpu_fallback(const Shard& shard, const Job& job) const {
    const auto& props = shard.device->props();
    switch (job.kind) {
        case JobKind::Uniform:
            return batch_footprint_bytes(job.num_arrays, job.array_size, job.opts, props,
                                         1) > shard.memory_budget;
        case JobKind::Ragged: {
            if (BufferPool::class_bytes(job_elements(job) * sizeof(float)) >
                shard.memory_budget) {
                return true;
            }
            for (std::size_t i = 1; i < job.offsets.size(); ++i) {
                const std::size_t n =
                    static_cast<std::size_t>(job.offsets[i] - job.offsets[i - 1]);
                if (!ragged_row_fits_shared(n, job.opts, props, 1)) return true;
            }
            return false;
        }
        case JobKind::Pairs:
            return 2 * BufferPool::class_bytes(job_elements(job) * sizeof(float)) >
                       shard.memory_budget ||
                   !ragged_row_fits_shared(job.array_size, job.opts, props, 2);
    }
    return false;
}

BufferPool::Lease Server::acquire_or_trim(Shard& shard, std::size_t bytes) {
    // Cached idle ranges may be fragmenting the arena (or an injected
    // allocation fault fired): trim and retry per the configured policy,
    // recording each attempt and its modeled backoff.
    const unsigned max_attempts = std::max(cfg_.retry.max_attempts, 1u);
    for (unsigned attempt = 1;; ++attempt) {
        try {
            return shard.pool.acquire(bytes);
        } catch (const simt::DeviceBadAlloc&) {
            if (attempt >= max_attempts) throw;
            // The held reuse graph pins splitter/scratch buffers; drop it so
            // the trim below can actually return memory to the arena.
            shard.graph_cache.reset();
            shard.pool.trim();
            std::lock_guard lk(mutex_);
            ++stats_.alloc_retries;
            stats_.retry_backoff_ms += cfg_.retry.backoff_ms(attempt, bytes);
        }
    }
}

void Server::serve_batch(Shard& shard, std::vector<PendingPtr> batch) {
    bool dead = false;
    {
        // A batch can only reach a quarantined shard when every device is
        // lost (routing avoids quarantined shards otherwise): pure host mode.
        std::lock_guard lk(mutex_);
        dead = shard.quarantined;
    }
    if (dead) {
        for (auto& p : batch) run_cpu_fallback(*p);
        return;
    }
    if (batch.size() == 1 && needs_cpu_fallback(shard, batch.front()->job)) {
        run_cpu_fallback(*batch.front());
        return;
    }
    // Register with the watchdog: the batch becomes hedgeable (input
    // snapshots taken, promises moved into first-wins rendezvous states)
    // and its age drives stall detection.  The guard unregisters on every
    // exit path, including throws.
    const std::uint64_t token = register_inflight(shard, batch);
    struct InflightGuard {
        Server* server;
        std::uint64_t token;
        ~InflightGuard() {
            if (token != 0) server->unregister_inflight(token);
        }
    } inflight_guard{this, token};

    // Transient device errors (gas::resilient::transient — allocation
    // failures, refused launches, detected corruption, failed verification)
    // retry the whole batch: execute_* completes no promise and touches no
    // host buffer before it can throw, so each attempt re-stages clean data.
    // Exhausted retries mean the device is gone: quarantine the shard and
    // re-home its work on the survivors (the last live device host-serves
    // the batch instead).  A non-transient error (a real bug, e.g.
    // SanitizeError) fails the batch.
    const unsigned max_attempts = std::max(cfg_.retry.max_attempts, 1u);
    for (unsigned attempt = 1;; ++attempt) {
        try {
            switch (batch.front()->job.kind) {
                case JobKind::Uniform: execute_uniform(shard, batch); break;
                case JobKind::Ragged: execute_ragged(shard, batch); break;
                case JobKind::Pairs: execute_pairs(shard, batch); break;
            }
            return;
        } catch (const std::exception& e) {
            if (!gas::resilient::transient(e)) {
                fail_batch(batch, e.what());
                return;
            }
            if (attempt < max_attempts) {
                std::lock_guard lk(mutex_);
                ++stats_.retries;
                stats_.retry_backoff_ms +=
                    cfg_.retry.backoff_ms(attempt, batch.front()->id);
                if (cfg_.health.enabled && shard.health.on_transient_fault()) {
                    ++hstats_.demotions;
                }
                continue;
            }
            quarantine_and_reroute(shard, batch);
            return;
        }
    }
}

void Server::quarantine_and_reroute(Shard& shard, std::vector<PendingPtr>& batch) {
    std::vector<PendingPtr> rehome;
    bool survivors = false;
    {
        std::lock_guard lk(mutex_);
        for (const auto& sp : shards_) {
            if (sp.get() != &shard && !sp->quarantined) {
                survivors = true;
                break;
            }
        }
        if (survivors) {
            shard.quarantined = true;
            shard.breakdown.quarantined = true;
            ++stats_.devices_quarantined;
            if (cfg_.health.enabled && shard.health.on_quarantine()) {
                ++hstats_.quarantines;
            }
            for (auto& q : shard.queue) {
                for (auto& p : q) rehome.push_back(std::move(p));
                q.clear();
            }
            queued_ -= rehome.size();
            shard.queued = 0;
            shard.queued_elements = 0;
        }
    }
    if (!survivors) {
        // Last device standing: single-device semantics — this batch
        // quarantines to solo host re-sorts and the device stays routable
        // (the next batch tries it again).
        for (auto& p : batch) run_cpu_fallback(*p, /*quarantined=*/true);
        return;
    }
    for (auto& p : batch) rehome.push_back(std::move(p));
    batch.clear();
    {
        std::lock_guard lk(mutex_);
        for (auto& p : rehome) {
            const std::size_t elements = p->elements;
            Shard& target = *shards_[route_locked(*p)];
            ++target.breakdown.reroutes_in;
            ++shard.breakdown.reroutes_out;
            ++stats_.reroutes;
            ++target.queued;
            target.queued_elements += elements;
            target.queue[static_cast<std::size_t>(p->job.priority)].push_back(
                std::move(p));
            ++queued_;
        }
        stats_.queue_peak = std::max(stats_.queue_peak, queued_);
    }
    // Re-homed requests may briefly push the queue above its capacity; the
    // alternative is dropping accepted work on a device loss.
    queue_cv_.notify_all();
}

void Server::execute_uniform(Shard& shard, std::vector<PendingPtr>& batch) {
    const auto service_start = Clock::now();
    // Brownout L1+: response verification is the first service quality shed
    // under overload (the sort still runs; per-row checks are skipped and
    // counted).  The cached level makes this read lock-free.
    const bool verify =
        cfg_.verify_responses &&
        !(cfg_.health.enabled &&
          brownout_level_cache_.load(std::memory_order_relaxed) >= 1);
    if (cfg_.verify_responses && !verify) {
        std::lock_guard vlk(mutex_);
        ++hstats_.verify_skipped_batches;
    }
    simt::Device& device = *shard.device;
    const std::size_t n = batch.front()->job.array_size;
    std::size_t total_arrays = 0;
    std::vector<BatchSlice> slices;
    slices.reserve(batch.size());
    for (const auto& p : batch) {
        slices.push_back({total_arrays, p->arrays});
        total_arrays += p->arrays;
    }
    const std::size_t count = total_arrays * n;
    const std::size_t bytes = count * sizeof(float);

    const BufferPool::Lease lease = acquire_or_trim(shard, bytes);
    try {
        auto view = simt::DeviceBuffer<float>::borrow(device, lease.offset, count);
        auto dev = view.span();
        // Expected per-row checksums come from the host copies while staging
        // — ground truth no device fault can touch.
        std::vector<std::uint64_t> expected;
        if (verify) expected.reserve(total_arrays);
        std::size_t pos = 0;
        for (const auto& p : batch) {
            std::memcpy(dev.data() + pos, p->job.values.data(),
                        p->elements * sizeof(float));
            if (verify) {
                for (std::size_t a = 0; a < p->arrays; ++a) {
                    expected.push_back(resilient::row_checksum(std::span<const float>(
                        p->job.values.data() + a * n, n)));
                }
            }
            pos += p->elements;
        }
        const double h2d = device.transfer_ms(bytes);

        Options opts = batch.front()->job.opts;
        opts.validate = cfg_.validate;
        opts.collect_bucket_sizes = false;
        opts.verify_output = false;  // the server verifies per request below

        // Adaptive tuning: merge the batch members' submit-time sketches and
        // let the controller reshape the sort-shaping knobs.  The server-
        // owned knobs above stay pinned; with no sketch (auto_tune off at
        // either level) the submitted options run untouched.
        tune::Plan plan;
        bool tuned = false;
        {
            tune::Sketch merged;
            for (const auto& p : batch) merged.merge(p->sketch);
            if (!merged.empty()) {
                std::lock_guard lk(mutex_);
                plan = controller_.choose(merged, n, opts, device.props());
                tuned = true;
                opts = plan.opts;
                if (plan.candidate != "paper-default") ++stats_.tuned_batches;
                if (cfg_.route_policy == gas::fleet::RoutePolicy::KeyRange &&
                    shards_.size() > 1) {
                    // Fleet-level aggregate sketch -> equal-mass KeyRange
                    // bands (the controller returns the interior splits; the
                    // domain bound closes the last device's band).
                    auto bands = controller_.key_bands(shards_.size());
                    if (!bands.empty()) {
                        bands.push_back(cfg_.key_space_max);
                        router_.set_key_bands(std::move(bands));
                    }
                }
            }
        }

        SortStats s;
        // Graph reuse cache: a consecutive batch with the same fingerprint
        // (device span, geometry, effective options) resubmits the shard's
        // held graph instead of rebuilding the pipeline.
        if (opts.graph_launch && !opts.validate) {
            if (shard.graph_cache &&
                shard.graph_cache->matches(device, dev, total_arrays, n, opts)) {
                s = shard.graph_cache->run();
                std::lock_guard lk(mutex_);
                ++stats_.graph_cache_hits;
            } else {
                const bool evicted = shard.graph_cache != nullptr;
                shard.graph_cache.reset();  // free held temporaries first
                shard.graph_cache = std::make_unique<UniformSortGraph>(
                    device, dev, total_arrays, n, opts);
                s = shard.graph_cache->run();
                std::lock_guard lk(mutex_);
                ++stats_.graph_cache_misses;
                if (evicted) ++stats_.graph_cache_evictions;
            }
        } else {
            s = sort_uniform_batch_on_device(device, view, slices, total_arrays, n,
                                             opts);
        }
        double kernel_ms = s.modeled_kernel_ms();
        if (tuned) {
            std::lock_guard lk(mutex_);
            controller_.observe(plan.regime, plan.candidate, kernel_ms, count,
                                device.props());
        }

        std::vector<std::uint8_t> row_fail;
        if (verify) {
            row_fail.assign(total_arrays, 0);
            const auto vc = resilient::verify_rows_on_device<float>(
                device, std::span<const float>(dev.data(), count), total_arrays, n,
                opts.order, expected, row_fail);
            kernel_ms += vc.modeled_ms;
        }

        // Copy back only verified requests; one with any failing row is
        // quarantined (its host buffer still holds the original input).
        std::vector<PendingPtr> served;
        std::vector<PendingPtr> quarantined;
        pos = 0;
        std::size_t served_bytes = 0;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            Pending& p = *batch[i];
            bool bad = false;
            for (std::size_t a = slices[i].first_array;
                 a < slices[i].first_array + slices[i].num_arrays; ++a) {
                bad |= !row_fail.empty() && row_fail[a] != 0;
            }
            if (!bad) {
                std::memcpy(p.job.values.data(), dev.data() + pos,
                            p.elements * sizeof(float));
                served_bytes += p.elements * sizeof(float);
            }
            pos += p.elements;
            (bad ? quarantined : served).push_back(std::move(batch[i]));
        }
        const double d2h = device.transfer_ms(served_bytes);
        shard.pool.release(lease);
        if (!served.empty()) {
            finish_batch(shard, served, h2d, d2h, kernel_ms, service_start);
        }
        quarantine_failed(quarantined);
    } catch (...) {
        shard.pool.release(lease);
        throw;
    }
}

void Server::execute_ragged(Shard& shard, std::vector<PendingPtr>& batch) {
    const auto service_start = Clock::now();
    // Brownout L1+: response verification is the first service quality shed
    // under overload (the sort still runs; per-row checks are skipped and
    // counted).  The cached level makes this read lock-free.
    const bool verify =
        cfg_.verify_responses &&
        !(cfg_.health.enabled &&
          brownout_level_cache_.load(std::memory_order_relaxed) >= 1);
    if (cfg_.verify_responses && !verify) {
        std::lock_guard vlk(mutex_);
        ++hstats_.verify_skipped_batches;
    }
    simt::Device& device = *shard.device;
    std::size_t total_values = 0;
    std::size_t total_arrays = 0;
    std::vector<std::uint64_t> fused_offsets;
    std::vector<BatchSlice> slices;
    slices.reserve(batch.size());
    fused_offsets.push_back(0);
    for (const auto& p : batch) {
        slices.push_back({total_arrays, p->arrays});
        const std::uint64_t base = p->job.offsets.front();
        for (std::size_t i = 1; i < p->job.offsets.size(); ++i) {
            fused_offsets.push_back(total_values + (p->job.offsets[i] - base));
        }
        total_values += p->elements;
        total_arrays += p->arrays;
    }
    const std::size_t bytes = total_values * sizeof(float);

    const BufferPool::Lease lease = acquire_or_trim(shard, bytes);
    try {
        auto view = simt::DeviceBuffer<float>::borrow(device, lease.offset, total_values);
        auto dev = view.span();
        std::vector<std::uint64_t> expected;
        if (verify) expected.reserve(total_arrays);
        std::size_t pos = 0;
        for (const auto& p : batch) {
            std::memcpy(dev.data() + pos,
                        p->job.values.data() + p->job.offsets.front(),
                        p->elements * sizeof(float));
            if (verify) {
                const auto& off = p->job.offsets;
                for (std::size_t i = 1; i < off.size(); ++i) {
                    expected.push_back(resilient::row_checksum(std::span<const float>(
                        p->job.values.data() + off[i - 1],
                        static_cast<std::size_t>(off[i] - off[i - 1]))));
                }
            }
            pos += p->elements;
        }
        const double h2d = device.transfer_ms(bytes);

        Options opts = batch.front()->job.opts;
        opts.validate = cfg_.validate;
        opts.collect_bucket_sizes = false;
        opts.verify_output = false;  // the server verifies per request below

        // Adaptive tuning (see execute_uniform); the representative row
        // length of the fused CSR buffer stands in for array_size.
        tune::Plan plan;
        bool tuned = false;
        {
            tune::Sketch merged;
            for (const auto& p : batch) merged.merge(p->sketch);
            if (!merged.empty() && total_arrays > 0) {
                std::lock_guard lk(mutex_);
                plan = controller_.choose(merged, total_values / total_arrays, opts,
                                          device.props());
                tuned = true;
                opts = plan.opts;
                if (plan.candidate != "paper-default") ++stats_.tuned_batches;
            }
        }

        const SortStats s =
            sort_ragged_batch_on_device(device, view, fused_offsets, slices, opts);
        double kernel_ms = s.modeled_kernel_ms();
        if (tuned) {
            std::lock_guard lk(mutex_);
            controller_.observe(plan.regime, plan.candidate, kernel_ms, total_values,
                                device.props());
        }

        std::vector<std::uint8_t> row_fail;
        if (verify) {
            row_fail.assign(total_arrays, 0);
            // The ragged device path sorts ascending regardless of
            // opts.order (see sort_ragged_on_device); verify likewise.
            const auto vc = resilient::verify_csr_on_device<float>(
                device, std::span<const float>(dev.data(), total_values), fused_offsets,
                SortOrder::Ascending, expected, row_fail);
            kernel_ms += vc.modeled_ms;
        }

        std::vector<PendingPtr> served;
        std::vector<PendingPtr> quarantined;
        pos = 0;
        std::size_t served_bytes = 0;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            Pending& p = *batch[i];
            bool bad = false;
            for (std::size_t a = slices[i].first_array;
                 a < slices[i].first_array + slices[i].num_arrays; ++a) {
                bad |= !row_fail.empty() && row_fail[a] != 0;
            }
            if (!bad) {
                std::memcpy(p.job.values.data() + p.job.offsets.front(), dev.data() + pos,
                            p.elements * sizeof(float));
                served_bytes += p.elements * sizeof(float);
            }
            pos += p.elements;
            (bad ? quarantined : served).push_back(std::move(batch[i]));
        }
        const double d2h = device.transfer_ms(served_bytes);
        shard.pool.release(lease);
        if (!served.empty()) {
            finish_batch(shard, served, h2d, d2h, kernel_ms, service_start);
        }
        quarantine_failed(quarantined);
    } catch (...) {
        shard.pool.release(lease);
        throw;
    }
}

void Server::execute_pairs(Shard& shard, std::vector<PendingPtr>& batch) {
    const auto service_start = Clock::now();
    // Brownout L1+: response verification is the first service quality shed
    // under overload (the sort still runs; per-row checks are skipped and
    // counted).  The cached level makes this read lock-free.
    const bool verify =
        cfg_.verify_responses &&
        !(cfg_.health.enabled &&
          brownout_level_cache_.load(std::memory_order_relaxed) >= 1);
    if (cfg_.verify_responses && !verify) {
        std::lock_guard vlk(mutex_);
        ++hstats_.verify_skipped_batches;
    }
    simt::Device& device = *shard.device;
    const std::size_t n = batch.front()->job.array_size;
    std::size_t total_arrays = 0;
    std::vector<BatchSlice> slices;
    slices.reserve(batch.size());
    for (const auto& p : batch) {
        slices.push_back({total_arrays, p->arrays});
        total_arrays += p->arrays;
    }
    const std::size_t count = total_arrays * n;
    const std::size_t bytes = count * sizeof(float);

    const BufferPool::Lease key_lease = acquire_or_trim(shard, bytes);
    BufferPool::Lease val_lease;
    try {
        val_lease = acquire_or_trim(shard, bytes);
    } catch (...) {
        shard.pool.release(key_lease);
        throw;
    }
    try {
        auto keys = simt::DeviceBuffer<float>::borrow(device, key_lease.offset, count);
        auto vals = simt::DeviceBuffer<float>::borrow(device, val_lease.offset, count);
        auto kdev = keys.span();
        auto vdev = vals.span();
        std::vector<std::uint64_t> expected;
        if (verify) expected.reserve(total_arrays);
        std::size_t pos = 0;
        for (const auto& p : batch) {
            std::memcpy(kdev.data() + pos, p->job.values.data(),
                        p->elements * sizeof(float));
            std::memcpy(vdev.data() + pos, p->job.payload.data(),
                        p->elements * sizeof(float));
            if (verify) {
                for (std::size_t a = 0; a < p->arrays; ++a) {
                    expected.push_back(resilient::pair_row_checksum(
                        std::span<const float>(p->job.values.data() + a * n, n),
                        std::span<const float>(p->job.payload.data() + a * n, n)));
                }
            }
            pos += p->elements;
        }
        const double h2d = device.transfer_ms(2 * bytes);

        Options opts = batch.front()->job.opts;
        opts.validate = cfg_.validate;
        opts.collect_bucket_sizes = false;
        opts.verify_output = false;  // the server verifies per request below
        const SortStats s = sort_pair_batch_on_device(device, keys, vals, slices,
                                                      total_arrays, n, opts);
        double kernel_ms = s.modeled_kernel_ms();

        std::vector<std::uint8_t> row_fail;
        if (verify) {
            row_fail.assign(total_arrays, 0);
            const auto vc = resilient::verify_pair_rows_on_device<float>(
                device, std::span<const float>(kdev.data(), count),
                std::span<const float>(vdev.data(), count), total_arrays, n, opts.order,
                expected, row_fail);
            kernel_ms += vc.modeled_ms;
        }

        std::vector<PendingPtr> served;
        std::vector<PendingPtr> quarantined;
        pos = 0;
        std::size_t served_bytes = 0;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            Pending& p = *batch[i];
            bool bad = false;
            for (std::size_t a = slices[i].first_array;
                 a < slices[i].first_array + slices[i].num_arrays; ++a) {
                bad |= !row_fail.empty() && row_fail[a] != 0;
            }
            if (!bad) {
                std::memcpy(p.job.values.data(), kdev.data() + pos,
                            p.elements * sizeof(float));
                std::memcpy(p.job.payload.data(), vdev.data() + pos,
                            p.elements * sizeof(float));
                served_bytes += 2 * p.elements * sizeof(float);
            }
            pos += p.elements;
            (bad ? quarantined : served).push_back(std::move(batch[i]));
        }
        const double d2h = device.transfer_ms(served_bytes);
        shard.pool.release(key_lease);
        shard.pool.release(val_lease);
        if (!served.empty()) {
            finish_batch(shard, served, h2d, d2h, kernel_ms, service_start);
        }
        quarantine_failed(quarantined);
    } catch (...) {
        shard.pool.release(key_lease);
        shard.pool.release(val_lease);
        throw;
    }
}

void Server::quarantine_failed(std::vector<PendingPtr>& victims) {
    if (victims.empty()) return;
    {
        std::lock_guard lk(mutex_);
        stats_.verify_failures += victims.size();
    }
    // The suspect device bytes were never copied back: each victim re-sorts
    // alone on the host from its original input.
    for (auto& p : victims) run_cpu_fallback(*p, /*quarantined=*/true);
}

void Server::run_cpu_fallback(Pending& p, bool quarantined) {
    const auto service_start = Clock::now();
    Job& job = p.job;
    const KeyLess less{job.opts.order == SortOrder::Descending};
    switch (job.kind) {
        case JobKind::Uniform:
            for (std::size_t a = 0; a < job.num_arrays; ++a) {
                auto* row = job.values.data() + a * job.array_size;
                std::sort(row, row + job.array_size, less);
            }
            break;
        case JobKind::Ragged:
            for (std::size_t i = 1; i < job.offsets.size(); ++i) {
                std::sort(job.values.data() + job.offsets[i - 1],
                          job.values.data() + job.offsets[i], less);
            }
            break;
        case JobKind::Pairs:
            for (std::size_t a = 0; a < job.num_arrays; ++a) {
                const std::size_t base = a * job.array_size;
                std::vector<std::pair<float, float>> row(job.array_size);
                for (std::size_t i = 0; i < job.array_size; ++i) {
                    row[i] = {job.values[base + i], job.payload[base + i]};
                }
                // Stable by key: ties keep submit order (the device path
                // leaves ties unspecified; fallback picks the deterministic
                // choice).
                std::stable_sort(row.begin(), row.end(),
                                 [&](const auto& x, const auto& y) {
                                     return less(x.first, y.first);
                                 });
                for (std::size_t i = 0; i < job.array_size; ++i) {
                    job.values[base + i] = row[i].first;
                    job.payload[base + i] = row[i].second;
                }
            }
            break;
    }
    const auto now = Clock::now();

    Response r;
    r.status = Status::Ok;
    r.cpu_fallback = true;
    r.batch_requests = 1;
    r.queue_ms = ms_between(p.submitted_at, service_start);
    r.service_ms = ms_between(service_start, now);
    r.backpressure = p.backpressure;
    r.values = std::move(job.values);
    r.payload = std::move(job.payload);

    {
        std::lock_guard lk(mutex_);
        // Hedge clones carry no caller of their own: their work is real but
        // the per-request counters and latency digests track caller requests
        // only (completed must match accepted).
        if (!p.is_hedge) {
            ++stats_.completed;
            ++stats_.cpu_fallbacks;
            if (quarantined) ++stats_.quarantined;
            queue_wait_digest_.record(r.queue_ms);
            wall_digest_.record(r.queue_ms + r.service_ms);
            modeled_digest_.record(0.0);
        }
        stats_.wall_service_ms += r.service_ms;
    }
    resolve(p, std::move(r));
}

void Server::fail_batch(std::vector<PendingPtr>& batch, const std::string& why) {
    {
        std::lock_guard lk(mutex_);
        for (const auto& p : batch) {
            if (!p->is_hedge) ++stats_.failed;
        }
    }
    for (auto& p : batch) {
        Response r;
        r.status = Status::Failed;
        r.error = why;
        r.backpressure = p->backpressure;
        r.values = std::move(p->job.values);
        r.payload = std::move(p->job.payload);
        resolve(*p, std::move(r));
    }
}

void Server::finish_batch(Shard& shard, std::vector<PendingPtr>& batch, double h2d_ms,
                          double d2h_ms, double kernel_ms,
                          Clock::time_point service_start) {
    const auto now = Clock::now();
    const double service_ms = ms_between(service_start, now);
    std::size_t total_elements = 0;
    std::size_t total_arrays = 0;
    for (const auto& p : batch) {
        total_elements += p->elements;
        total_arrays += p->arrays;
    }

    std::vector<Response> responses(batch.size());
    {
        std::lock_guard lk(mutex_);
        const std::uint64_t batch_id = next_batch_id_++;
        // Round-robin this shard's streams; its Timeline mutates under the
        // lock so stats() can fold every shard consistently.
        const std::size_t stream = static_cast<std::size_t>(shard.breakdown.batches) %
                                   shard.timeline.stream_count();
        shard.timeline.h2d(stream, h2d_ms);
        shard.timeline.compute(stream, kernel_ms);
        shard.timeline.d2h(stream, d2h_ms);

        std::size_t callers = 0;  // batch members minus hedge clones
        for (const auto& p : batch) {
            if (!p->is_hedge) ++callers;
        }
        stats_.completed += callers;
        ++stats_.batches;
        stats_.batched_requests += batch.size();
        stats_.fused_arrays += total_arrays;
        stats_.modeled_kernel_ms += kernel_ms;
        stats_.modeled_h2d_ms += h2d_ms;
        stats_.modeled_d2h_ms += d2h_ms;
        stats_.wall_service_ms += service_ms;
        ++shard.breakdown.batches;
        shard.breakdown.completed += callers;
        shard.breakdown.fused_arrays += total_arrays;
        shard.breakdown.modeled_kernel_ms += kernel_ms;

        if (cfg_.health.enabled) {
            // A batch finished clean on this device: clear any stall flag
            // and advance the recovery streaks (Degraded -> Healthy,
            // Probation -> Healthy after enough clean batches).
            shard.stall_flag.store(false, std::memory_order_relaxed);
            const auto st = shard.health.state();
            if (shard.health.on_clean_batch()) {
                if (st == gas::health::State::Probation) {
                    ++hstats_.readmissions;
                } else {
                    ++hstats_.degraded_recoveries;
                }
            }
        }

        for (std::size_t i = 0; i < batch.size(); ++i) {
            Pending& p = *batch[i];
            Response& r = responses[i];
            r.status = Status::Ok;
            r.batch_id = batch_id;
            r.batch_requests = batch.size();
            r.queue_ms = ms_between(p.submitted_at, service_start);
            r.service_ms = service_ms;
            const double share = total_elements > 0
                                     ? static_cast<double>(p.elements) /
                                           static_cast<double>(total_elements)
                                     : 0.0;
            r.modeled_ms = (h2d_ms + kernel_ms + d2h_ms) * share;
            r.backpressure = p.backpressure;
            r.values = std::move(p.job.values);
            r.payload = std::move(p.job.payload);
            if (!p.is_hedge) {
                queue_wait_digest_.record(r.queue_ms);
                wall_digest_.record(r.queue_ms + r.service_ms);
                modeled_digest_.record(r.modeled_ms);
            }
        }
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
        resolve(*batch[i], std::move(responses[i]));
    }
}

ServerStats Server::stats() const {
    std::lock_guard lk(mutex_);
    ServerStats s = stats_;
    s.queue_depth = queued_;
    s.queue_wait_ms = summarize(queue_wait_digest_);
    s.wall_ms = summarize(wall_digest_);
    s.modeled_ms = summarize(modeled_digest_);

    // Fold the fleet: devices run concurrently, so the modeled makespan is
    // the slowest shard's pipeline and engine utilizations are fleet-wide.
    s.devices.clear();
    s.devices.reserve(shards_.size());
    double overlap = 0.0;
    double serial = 0.0;
    double h2d_busy = 0.0;
    double compute_busy = 0.0;
    double d2h_busy = 0.0;
    BufferPool::Stats pool{};
    for (const auto& sp : shards_) {
        const Shard& shard = *sp;
        DeviceBreakdown d = shard.breakdown;
        d.quarantined = shard.quarantined;
        d.queue_depth = shard.queued;
        d.health_state = cfg_.health.enabled
                             ? gas::health::to_string(shard.health.state())
                             : (shard.quarantined ? "quarantined" : "healthy");
        d.modeled_overlap_ms = shard.timeline.elapsed_ms();
        d.compute_utilization = shard.timeline.compute_utilization();
        overlap = std::max(overlap, d.modeled_overlap_ms);
        serial += shard.timeline.serialized_ms();
        h2d_busy += shard.timeline.h2d_busy_ms();
        compute_busy += shard.timeline.compute_busy_ms();
        d2h_busy += shard.timeline.d2h_busy_ms();
        const simt::Device::GraphTelemetry& gt = shard.device->graph_telemetry();
        s.graphs += gt.graphs;
        s.graph_nodes += gt.nodes;
        s.graph_kernel_nodes += gt.kernel_nodes;
        s.graph_host_nodes += gt.host_nodes;
        s.graph_device_enqueued += gt.device_enqueued;
        s.graph_pruned += gt.pruned;
        const BufferPool::Stats ps = shard.pool.stats();
        pool.acquires += ps.acquires;
        pool.reuse_hits += ps.reuse_hits;
        pool.device_allocs += ps.device_allocs;
        pool.releases += ps.releases;
        pool.bytes_cached += ps.bytes_cached;
        pool.bytes_leased += ps.bytes_leased;
        pool.peak_leased += ps.peak_leased;
        s.devices.push_back(std::move(d));
    }
    s.tune_enabled = cfg_.auto_tune;
    s.tune_decisions = controller_.decisions();
    s.tune_plan_switches = controller_.plan_switches();
    s.key_bands = router_.key_bands();
    s.tune_cells.clear();
    for (const auto& c : controller_.cells()) {
        ServerStats::TuneCell tc;
        tc.regime = tune::to_string(c.regime);
        tc.candidate = c.candidate;
        tc.predicted = c.predicted;
        tc.observed = c.observed_ewma;
        tc.observations = c.observations;
        tc.incumbent = c.incumbent;
        s.tune_cells.push_back(std::move(tc));
    }
    s.modeled_overlap_ms = overlap;
    s.modeled_serial_ms = serial;
    s.h2d_busy_ms = h2d_busy;
    s.compute_busy_ms = compute_busy;
    s.d2h_busy_ms = d2h_busy;
    const double denom = overlap * static_cast<double>(shards_.size());
    s.h2d_utilization = denom > 0.0 ? h2d_busy / denom : 0.0;
    s.compute_utilization = denom > 0.0 ? compute_busy / denom : 0.0;
    s.d2h_utilization = denom > 0.0 ? d2h_busy / denom : 0.0;
    s.pool = pool;
    s.health = hstats_;
    s.health.enabled = cfg_.health.enabled;
    s.health.brownout_level = brownout_.level();
    return s;
}

void Server::resolve(Pending& p, Response&& r) {
    if (!p.hedge) {
        p.promise.set_value(std::move(r));
        return;
    }
    // First-result-wins: the winner takes the promise; the loser's bytes are
    // hashed against the winner's (they re-sorted the same snapshot, so any
    // divergence is a real correctness failure, not a race).
    auto hs = p.hedge;
    const std::uint64_t hash =
        r.status == Status::Ok ? hash_bytes(r.values, r.payload) : 0;
    bool won = false;
    bool won_as_hedge = false;
    bool mismatch = false;
    bool launched = false;
    {
        std::lock_guard hlk(hs->m);
        launched = hs->launched;
        if (!hs->resolved) {
            hs->resolved = true;
            hs->winner_ok = r.status == Status::Ok;
            hs->winner_hash = hash;
            hs->winner_from_hedge = p.is_hedge;
            won = true;
            won_as_hedge = p.is_hedge;
            hs->promise.set_value(std::move(r));
        } else if (r.status == Status::Ok && hs->winner_ok && hash != hs->winner_hash) {
            mismatch = true;
        }
    }
    if (launched) {
        std::lock_guard lk(mutex_);
        if (won && won_as_hedge) ++hstats_.hedge_wins;
        if (won && !won_as_hedge) ++hstats_.hedge_primary_wins;
        if (mismatch) ++hstats_.hedge_mismatches;
    }
}

void Server::sample_load_locked(Shard& shard) {
    sample_queue_depth(shard.breakdown, shard.queued);
    if (cfg_.health.enabled) {
        gas::tune::Ewma e{cfg_.health.load_alpha, shard.load_ewma,
                          shard.load_ewma_primed};
        e.update(static_cast<double>(shard.queued_elements));
        shard.load_ewma = e.value;
        shard.load_ewma_primed = true;
    }
}

void Server::update_brownout_locked() {
    if (!cfg_.health.enabled || cfg_.queue_capacity == 0) return;
    // Smoothed fleet occupancy from the per-shard queue-depth EWMAs — the
    // same signal dashboards trend — so one burst tick cannot whipsaw the
    // ladder; hysteresis inside Brownout handles the way down.
    double ewma_depth = 0.0;
    for (const auto& sp : shards_) ewma_depth += sp->breakdown.queue_depth_ewma;
    const double occupancy = ewma_depth / static_cast<double>(cfg_.queue_capacity);
    const int delta = brownout_.update(occupancy);
    if (delta > 0) {
        hstats_.brownout_escalations += static_cast<std::uint64_t>(delta);
    } else if (delta < 0) {
        ++hstats_.brownout_deescalations;
    }
    brownout_level_cache_.store(brownout_.level(), std::memory_order_relaxed);
}

bool Server::shed_for_admission_locked(Priority incoming, PendingPtr& victim) {
    // Scan priority classes from Low upward, stopping at the newcomer's own
    // class: never displace more important work for less important work.
    // Within the chosen class the oldest queued request across all shards
    // drops first (head drop, CoDel-style).
    const auto inc = static_cast<std::size_t>(incoming);
    for (std::size_t pr = kPriorities; pr-- > 0;) {
        if (pr < inc) break;
        Shard* owner = nullptr;
        for (auto& sp : shards_) {
            auto& q = sp->queue[pr];
            if (q.empty()) continue;
            if (owner == nullptr ||
                q.front()->submitted_at < owner->queue[pr].front()->submitted_at) {
                owner = sp.get();
            }
        }
        if (owner == nullptr) continue;
        auto& q = owner->queue[pr];
        victim = std::move(q.front());
        q.pop_front();
        --owner->queued;
        owner->queued_elements -= victim->elements;
        --queued_;
        return true;
    }
    return false;  // everything queued outranks the newcomer
}

void Server::finish_shed(PendingPtr p, const char* why) {
    Response r;
    r.status = Status::Shed;
    r.error = why;
    r.backpressure = p->backpressure;
    r.values = std::move(p->job.values);
    r.payload = std::move(p->job.payload);
    resolve(*p, std::move(r));
    space_cv_.notify_one();
}

void Server::run_probe_cycle(Shard& shard) {
    // Owning-thread context: the quarantined shard's scheduler (async) or
    // the pump() caller (manual).  Free held device state first so the probe
    // allocation cannot collide with leftovers of the failed batch.
    shard.graph_cache.reset();
    shard.pool.trim();
    const std::uint64_t seed = 0x9e3779b97f4a7c15ull ^
                               (static_cast<std::uint64_t>(shard.index) << 32) ^
                               ++shard.probe_count;
    const gas::health::ProbeResult pr = gas::health::run_probe(
        *shard.device, seed, cfg_.health.probe_arrays, cfg_.health.probe_array_size);

    std::lock_guard lk(mutex_);
    ++hstats_.probes_run;
    if (pr.pass) {
        ++hstats_.probes_passed;
        if (shard.health.on_probe_pass()) {
            // K consecutive passes: re-admit on probation — routable again
            // with a ramped-up weight; clean batches finish the promotion.
            ++hstats_.probations;
            shard.quarantined = false;
            shard.breakdown.quarantined = false;
            shard.stall_flag.store(false, std::memory_order_relaxed);
            queue_cv_.notify_all();
        }
    } else {
        ++hstats_.probes_failed;
        shard.health.on_probe_fail();
    }
}

std::uint64_t Server::register_inflight(Shard& shard, std::vector<PendingPtr>& batch) {
    if (!cfg_.health.enabled || cfg_.manual_pump || !cfg_.health.hedge_enabled) {
        return 0;
    }
    // Pair batches never hedge: key-equal payload order is plan-dependent,
    // so a hedge re-execution could legitimately differ byte-wise.
    if (batch.front()->job.kind == JobKind::Pairs) return 0;
    std::lock_guard lk(mutex_);
    const std::uint64_t token = next_inflight_++;
    InFlight& inf = inflight_[token];
    inf.shard = &shard;
    inf.start = Clock::now();
    inf.snapshot.reserve(batch.size());
    inf.states.reserve(batch.size());
    for (auto& p : batch) {
        if (!p->hedge) {
            // Move the caller's promise into the rendezvous; from here on
            // every completion path goes through resolve().
            p->hedge = std::make_shared<HedgeState>();
            p->hedge->promise = std::move(p->promise);
        }
        inf.snapshot.push_back(p->job);  // full input copy (hedge re-sorts it)
        inf.states.push_back(p->hedge);
    }
    return token;
}

void Server::unregister_inflight(std::uint64_t token) {
    std::lock_guard lk(mutex_);
    inflight_.erase(token);
}

void Server::watchdog_main() {
    std::unique_lock lk(mutex_);
    const auto start = Clock::now();
    for (auto& sp : shards_) sp->hb_last_change = start;
    while (!stopping_) {
        watchdog_cv_.wait_for(lk, std::chrono::duration<double, std::milli>(
                                      cfg_.health.watchdog_poll_ms));
        if (stopping_) break;
        const auto now = Clock::now();
        for (auto& sp : shards_) {
            Shard& shard = *sp;
            const std::uint64_t ticks = shard.device->progress_ticks();
            if (ticks != shard.hb_last_ticks) {
                shard.hb_last_ticks = ticks;
                shard.hb_last_change = now;
                shard.stall_flag.store(false, std::memory_order_relaxed);
                continue;
            }
            if (shard.in_flight == 0) {
                // Idle devices make no progress by design; only a shard with
                // a batch in flight can be hung.
                shard.hb_last_change = now;
                continue;
            }
            if (!shard.stall_flag.load(std::memory_order_relaxed) &&
                ms_between(shard.hb_last_change, now) >= cfg_.health.stall_deadline_ms) {
                // Heartbeat stalled past the deadline: demote now (don't
                // wait for a typed fault) and tell the hang handler to abort
                // the launch, which surfaces as a transient StallFault.
                shard.stall_flag.store(true, std::memory_order_relaxed);
                ++hstats_.hangs_detected;
                if (shard.health.on_transient_fault()) ++hstats_.demotions;
            }
        }
        if (cfg_.health.hedge_enabled) launch_hedges_locked(now);
    }
}

void Server::launch_hedges_locked(Clock::time_point now) {
    // Deadline from the live latency distribution: a batch is a straggler
    // once it is hedge_factor x p99 old (floored for the cold start).
    const double deadline_ms = std::max(
        cfg_.health.hedge_min_ms, cfg_.health.hedge_factor * wall_digest_.percentile(99.0));
    for (auto& [token, inf] : inflight_) {
        if (inf.hedged) continue;
        Shard& src = *inf.shard;
        const auto st = src.health.state();
        const bool suspect = src.stall_flag.load(std::memory_order_relaxed) ||
                             st == gas::health::State::Degraded ||
                             st == gas::health::State::Quarantined;
        if (!suspect || ms_between(inf.start, now) < deadline_ms) continue;
        // Healthiest target: live, not the source, least loaded.
        Shard* target = nullptr;
        for (auto& sp : shards_) {
            if (sp.get() == &src || sp->quarantined) continue;
            if (sp->health.state() != gas::health::State::Healthy) continue;
            if (target == nullptr || sp->queued_elements < target->queued_elements) {
                target = sp.get();
            }
        }
        if (target == nullptr) continue;
        inf.hedged = true;
        ++hstats_.hedges_launched;
        for (std::size_t i = 0; i < inf.snapshot.size(); ++i) {
            {
                std::lock_guard hlk(inf.states[i]->m);
                if (inf.states[i]->resolved) continue;
                inf.states[i]->launched = true;
            }
            auto clone = std::make_unique<Pending>();
            clone->id = next_id_++;
            clone->job = inf.snapshot[i];
            clone->submitted_at = now;
            clone->arrays = job_arrays(clone->job);
            clone->elements = job_elements(clone->job);
            clone->rinfo = make_route_info(clone->job, clone->elements);
            clone->is_hedge = true;
            clone->hedge = inf.states[i];
            ++target->queued;
            target->queued_elements += clone->elements;
            target->queue[static_cast<std::size_t>(clone->job.priority)].push_back(
                std::move(clone));
            ++queued_;  // may briefly exceed capacity, like a reroute
        }
        queue_cv_.notify_all();
    }
}

}  // namespace gas::serve
