#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "simt/device_memory.hpp"

namespace gas::serve {

/// Size-class pooling sub-allocator over simt::DeviceMemory.
///
/// The serving layer turns over one fused data buffer (or two, for pairs)
/// per batch, hundreds of times a second, at a small set of recurring sizes.
/// Going through the device allocator each time would pay first-fit search
/// and re-fragment the arena per batch; the pool instead rounds each request
/// up to a power-of-two size class (>= DeviceMemory::kAlignment) and keeps
/// released ranges on per-class free lists, so a steady-state batch costs a
/// vector pop.  Ranges go back to the device allocator only on trim() or
/// destruction.
///
/// Thread-safe: one shard's scheduler thread does the acquiring, but trim()
/// (retry-path defragmentation) and stats() can arrive from other threads —
/// a stats() snapshot while a fleet peer quarantines, say — so every method
/// serializes on an internal mutex.  The underlying DeviceMemory is only
/// ever called with that mutex held, preserving its single-caller contract.
class BufferPool {
  public:
    /// A leased device range.  `bytes` is the rounded class size the lease
    /// actually occupies (callers use the prefix they asked for).
    struct Lease {
        std::size_t offset = 0;
        std::size_t bytes = 0;
    };

    struct Stats {
        std::uint64_t acquires = 0;      ///< total acquire() calls
        std::uint64_t reuse_hits = 0;    ///< served from a class free list
        std::uint64_t device_allocs = 0; ///< fell through to DeviceMemory
        std::uint64_t releases = 0;
        std::size_t bytes_cached = 0;    ///< idle bytes held on free lists
        std::size_t bytes_leased = 0;    ///< live leased bytes
        std::size_t peak_leased = 0;

        [[nodiscard]] double reuse_rate() const {
            return acquires > 0 ? static_cast<double>(reuse_hits) /
                                      static_cast<double>(acquires)
                                : 0.0;
        }
    };

    explicit BufferPool(simt::DeviceMemory& memory) : memory_(&memory) {}
    BufferPool(const BufferPool&) = delete;
    BufferPool& operator=(const BufferPool&) = delete;
    ~BufferPool() { trim(); }

    /// Leases at least `bytes` of device memory (throws simt::DeviceBadAlloc
    /// when neither the free lists nor the device can satisfy the class).
    [[nodiscard]] Lease acquire(std::size_t bytes);

    /// Returns a lease to its class free list (never to the device).
    void release(const Lease& lease);

    /// Hands every idle cached range back to the device allocator.
    void trim();

    [[nodiscard]] Stats stats() const {
        std::lock_guard lk(mutex_);
        return stats_;
    }

    /// The class size acquire(bytes) would lease (pow2, >= kAlignment).
    [[nodiscard]] static std::size_t class_bytes(std::size_t bytes);

  private:
    simt::DeviceMemory* memory_;
    mutable std::mutex mutex_;  ///< guards free_, stats_ and DeviceMemory calls
    /// free_[i] holds offsets of idle ranges of size 2^i.
    std::vector<std::vector<std::size_t>> free_ = std::vector<std::vector<std::size_t>>(64);
    Stats stats_;
};

}  // namespace gas::serve
