#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/options.hpp"

namespace gas::serve {

using Clock = std::chrono::steady_clock;

/// What kind of sort a job asks for.  All three map onto the fused batched
/// entry points in core/batch.hpp; float is the paper's element type and the
/// only one the serving layer speaks.
enum class JobKind : std::uint8_t {
    Uniform,  ///< num_arrays x array_size rows in `values`
    Ragged,   ///< CSR: `offsets` (N+1 entries) into `values`
    Pairs,    ///< num_arrays x array_size keys in `values`, payload alongside
};

[[nodiscard]] inline std::string to_string(JobKind k) {
    switch (k) {
        case JobKind::Uniform: return "uniform";
        case JobKind::Ragged: return "ragged";
        case JobKind::Pairs: return "pairs";
    }
    return "?";
}

/// Scheduling class.  The scheduler drains strictly higher classes first,
/// FIFO within a class — a High burst can starve Low, which is the point.
enum class Priority : std::uint8_t { High = 0, Normal = 1, Low = 2 };

[[nodiscard]] inline std::string to_string(Priority p) {
    switch (p) {
        case Priority::High: return "high";
        case Priority::Normal: return "normal";
        case Priority::Low: return "low";
    }
    return "?";
}

/// One sort request.  The job owns its data; the server moves it through the
/// pipeline and hands the sorted vectors back in the Response.
struct Job {
    JobKind kind = JobKind::Uniform;
    std::vector<float> values;             ///< rows / CSR values / pair keys
    std::vector<float> payload;            ///< pair values (Pairs only)
    std::vector<std::uint64_t> offsets;    ///< CSR offsets (Ragged only)
    std::size_t num_arrays = 0;            ///< Uniform / Pairs geometry
    std::size_t array_size = 0;
    Options opts;  ///< validate/collect_*/verify_output are server-owned, ignored
    Priority priority = Priority::Normal;
    /// Absolute deadline for *starting* service; a job still queued past it
    /// completes as TimedOut.  A deadline already in the past at submit is
    /// rejected as TimedOut without ever entering the queue.
    std::optional<Clock::time_point> deadline;

    Job& with_deadline_ms(double ms) {
        deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double, std::milli>(ms));
        return *this;
    }
};

/// Terminal state of a request.
enum class Status : std::uint8_t {
    Ok,         ///< sorted data is in the response
    Rejected,   ///< admission control refused it (queue full / server stopped)
    TimedOut,   ///< deadline expired before service started
    Cancelled,  ///< cancel() or stop(cancel_pending) removed it from the queue
    Failed,     ///< execution threw; `error` has the reason
    Shed,       ///< dropped by overload protection (gas::health); never silent
};

[[nodiscard]] inline std::string to_string(Status s) {
    switch (s) {
        case Status::Ok: return "ok";
        case Status::Rejected: return "rejected";
        case Status::TimedOut: return "timed-out";
        case Status::Cancelled: return "cancelled";
        case Status::Failed: return "failed";
        case Status::Shed: return "shed";
    }
    return "?";
}

/// What the future resolves to.
struct Response {
    Status status = Status::Rejected;
    std::string error;
    std::vector<float> values;   ///< sorted (moved back from the Job)
    std::vector<float> payload;  ///< permuted alongside keys (Pairs)
    bool cpu_fallback = false;   ///< served by the host path, not the device
    std::uint64_t batch_id = 0;          ///< fused batch this rode in (0 = none)
    std::size_t batch_requests = 0;      ///< requests fused into that batch
    double queue_ms = 0.0;    ///< submit -> service start (wall)
    double service_ms = 0.0;  ///< service start -> done (wall)
    double modeled_ms = 0.0;  ///< this request's share of modeled device time
    /// Queue occupancy (queued / capacity, in [0, 1]) observed when this
    /// request was admitted — the backpressure signal callers should feed
    /// into their own pacing before the server has to shed for them.
    double backpressure = 0.0;

    [[nodiscard]] bool ok() const { return status == Status::Ok; }
};

}  // namespace gas::serve
