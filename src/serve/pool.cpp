#include "serve/pool.hpp"

#include <algorithm>
#include <bit>

namespace gas::serve {

std::size_t BufferPool::class_bytes(std::size_t bytes) {
    const std::size_t floor = std::max<std::size_t>(bytes, simt::DeviceMemory::kAlignment);
    return std::bit_ceil(floor);
}

BufferPool::Lease BufferPool::acquire(std::size_t bytes) {
    const std::size_t size = class_bytes(bytes);
    const auto cls = static_cast<std::size_t>(std::countr_zero(size));
    std::lock_guard lk(mutex_);
    ++stats_.acquires;
    Lease lease;
    lease.bytes = size;
    auto& list = free_[cls];
    if (!list.empty()) {
        lease.offset = list.back();
        list.pop_back();
        ++stats_.reuse_hits;
        stats_.bytes_cached -= size;
    } else {
        lease.offset = memory_->allocate(size);
        ++stats_.device_allocs;
    }
    stats_.bytes_leased += size;
    stats_.peak_leased = std::max(stats_.peak_leased, stats_.bytes_leased);
    return lease;
}

void BufferPool::release(const Lease& lease) {
    if (lease.bytes == 0) return;
    const auto cls = static_cast<std::size_t>(std::countr_zero(lease.bytes));
    std::lock_guard lk(mutex_);
    free_[cls].push_back(lease.offset);
    ++stats_.releases;
    stats_.bytes_cached += lease.bytes;
    stats_.bytes_leased -= lease.bytes;
}

void BufferPool::trim() {
    std::lock_guard lk(mutex_);
    for (auto& list : free_) {
        for (std::size_t offset : list) memory_->deallocate(offset);
        list.clear();
    }
    stats_.bytes_cached = 0;
}

}  // namespace gas::serve
