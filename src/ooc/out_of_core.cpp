#include "ooc/out_of_core.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <vector>

#include "simt/stream.hpp"

namespace ooc {

std::size_t auto_batch_arrays(const simt::Device& device, std::size_t array_size,
                              const OocOptions& opts) {
    // Same contract as out_of_core_sort: a zero-stream pipeline is a caller
    // bug, not something to clamp silently (the two entry points used to
    // disagree here).
    if (opts.num_streams == 0) throw std::invalid_argument("auto_batch_arrays: 0 streams");
    const auto budget = static_cast<std::size_t>(
        static_cast<double>(device.memory().capacity()) * opts.memory_safety_factor /
        opts.num_streams);
    // Probe the per-array footprint (data + S + Z) via the capacity model.
    const std::size_t one = gas::device_footprint_bytes(1, array_size, opts.sort_opts,
                                                        device.props());
    const std::size_t thousand = gas::device_footprint_bytes(1000, array_size, opts.sort_opts,
                                                             device.props());
    const std::size_t per_array = std::max<std::size_t>(1, (thousand - one) / 999);
    return std::max<std::size_t>(1, budget / per_array);
}

OocStats out_of_core_sort(simt::Device& device, std::span<float> host_data,
                          std::size_t num_arrays, std::size_t array_size,
                          const OocOptions& opts, OocCheckpoint* checkpoint) {
    OocStats stats;
    stats.num_arrays = num_arrays;
    stats.array_size = array_size;
    if (num_arrays == 0 || array_size == 0) return stats;
    if (host_data.size() < num_arrays * array_size) {
        throw std::invalid_argument("out_of_core_sort: host span smaller than N x n");
    }
    if (opts.num_streams == 0) throw std::invalid_argument("out_of_core_sort: 0 streams");

    const std::size_t batch =
        opts.batch_arrays > 0 ? opts.batch_arrays : auto_batch_arrays(device, array_size, opts);
    stats.batch_arrays = batch;

    if (checkpoint != nullptr && !checkpoint->matches(num_arrays, array_size, batch)) {
        *checkpoint = {num_arrays, array_size, batch,
                       std::vector<std::uint8_t>((num_arrays + batch - 1) / batch, 0)};
    }

    simt::Timeline timeline(opts.num_streams);
    timeline.attach_faults(device);
    const auto t0 = std::chrono::steady_clock::now();

    const unsigned max_attempts = std::max(opts.retry.max_attempts, 1u);
    std::size_t chunk_idx = 0;
    for (std::size_t first = 0; first < num_arrays; first += batch, ++chunk_idx) {
        if (checkpoint != nullptr && checkpoint->done[chunk_idx] != 0) {
            ++stats.chunks_skipped;  // resumed run: this chunk already landed
            continue;
        }
        const std::size_t count = std::min(batch, num_arrays - first);
        const std::size_t stream = stats.batches % opts.num_streams;
        auto chunk = host_data.subspan(first * array_size, count * array_size);

        // Functional execution: upload, sort, download this batch.  The
        // allocator enforces that a batch (plus its temporaries) fits.
        // Transient failures (injected allocation faults, refused launches,
        // detected corruption, failed verification) retry the chunk alone —
        // the host copy is untouched until the final download, so every
        // attempt re-stages clean data.
        for (unsigned attempt = 1;; ++attempt) {
            try {
                simt::DeviceBuffer<float> dev(device, chunk.size());
                const double h2d = simt::copy_to_device(std::span<const float>(chunk), dev);
                const gas::SortStats s =
                    gas::sort_arrays_on_device(device, dev, count, array_size, opts.sort_opts);
                const double d2h = simt::copy_to_host(dev, chunk);

                // Overlap model: the same operations on the stream timeline.
                timeline.h2d(stream, h2d);
                timeline.compute(stream, s.modeled_kernel_ms());
                timeline.d2h(stream, d2h);

                stats.kernel_ms += s.modeled_kernel_ms();
                stats.transfer_ms += h2d + d2h;
                break;
            } catch (const std::exception& e) {
                if (!gas::resilient::transient(e)) throw;
                if (attempt < max_attempts) {
                    ++stats.chunk_retries;
                    stats.retry_backoff_ms += opts.retry.backoff_ms(attempt, chunk_idx);
                    continue;
                }
                if (!opts.host_fallback) throw;
                // Retries exhausted: this chunk re-sorts alone on the host,
                // so one persistently unlucky chunk cannot sink the run.
                const bool desc = opts.sort_opts.order == gas::SortOrder::Descending;
                for (std::size_t a = 0; a < count; ++a) {
                    auto row = chunk.subspan(a * array_size, array_size);
                    if (desc) {
                        std::sort(row.begin(), row.end(), std::greater<>());
                    } else {
                        std::sort(row.begin(), row.end());
                    }
                }
                ++stats.chunk_host_fallbacks;
                break;
            }
        }
        ++stats.batches;
        if (checkpoint != nullptr) checkpoint->done[chunk_idx] = 1;
    }

    const auto t1 = std::chrono::steady_clock::now();
    stats.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    stats.modeled_overlap_ms = timeline.elapsed_ms();
    stats.modeled_serial_ms = timeline.serialized_ms();
    return stats;
}

AutoSortStats auto_sort(simt::Device& device, std::span<float> host_data,
                        std::size_t num_arrays, std::size_t array_size,
                        const OocOptions& opts) {
    AutoSortStats stats;
    if (num_arrays == 0 || array_size == 0) return stats;
    const std::size_t footprint = gas::device_footprint_bytes(
        num_arrays, array_size, opts.sort_opts, device.props());
    const auto budget = static_cast<std::size_t>(
        static_cast<double>(device.memory().capacity()) * opts.memory_safety_factor);
    if (footprint <= budget) {
        stats.used_out_of_core = false;
        stats.in_core =
            gas::gpu_array_sort(device, host_data, num_arrays, array_size, opts.sort_opts);
    } else {
        stats.used_out_of_core = true;
        stats.ooc = out_of_core_sort(device, host_data, num_arrays, array_size, opts);
    }
    return stats;
}

}  // namespace ooc
