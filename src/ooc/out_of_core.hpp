#pragma once

#include <cstddef>
#include <span>

#include "core/gpu_array_sort.hpp"
#include "simt/device.hpp"

namespace ooc {

/// Options for the out-of-core array sort (the paper's section 9 future
/// work: "sort huge datasets ... without any concern of GPU global memory"
/// by hiding transfer latencies).
struct OocOptions {
    /// Arrays per device batch; 0 = auto-size to a fraction of free device
    /// memory (divided across the stream pipeline depth).
    std::size_t batch_arrays = 0;
    /// Stream pipeline depth; 2 = classic double buffering.  1 disables
    /// overlap (the comparison baseline in the bench).  0 is invalid: both
    /// out_of_core_sort and auto_batch_arrays throw std::invalid_argument.
    unsigned num_streams = 2;
    double memory_safety_factor = 0.9;  ///< fraction of device memory usable
    gas::Options sort_opts;
};

/// Cost summary of an out-of-core run.
struct OocStats {
    std::size_t num_arrays = 0;
    std::size_t array_size = 0;
    std::size_t batches = 0;
    std::size_t batch_arrays = 0;
    double modeled_overlap_ms = 0.0;   ///< timeline makespan with streams
    double modeled_serial_ms = 0.0;    ///< same ops fully serialized
    double kernel_ms = 0.0;            ///< modeled device compute only
    double transfer_ms = 0.0;          ///< modeled H2D + D2H only
    double wall_ms = 0.0;

    [[nodiscard]] double overlap_speedup() const {
        return modeled_overlap_ms > 0.0 ? modeled_serial_ms / modeled_overlap_ms : 1.0;
    }
};

/// Sorts a host dataset of num_arrays x array_size floats that may exceed
/// device memory: batches stream through the device on a multi-stream
/// pipeline (H2D -> three sort kernels -> D2H), overlapping transfers with
/// compute.  The host buffer is sorted in place.
OocStats out_of_core_sort(simt::Device& device, std::span<float> host_data,
                          std::size_t num_arrays, std::size_t array_size,
                          const OocOptions& opts = {});

/// The batch size (#arrays) auto-sizing would pick for this device.
[[nodiscard]] std::size_t auto_batch_arrays(const simt::Device& device, std::size_t array_size,
                                            const OocOptions& opts);

/// Result of auto_sort: which path ran and its stats.
struct AutoSortStats {
    bool used_out_of_core = false;
    gas::SortStats in_core;  ///< filled when the dataset fit the device
    OocStats ooc;            ///< filled when batching was required

    [[nodiscard]] double modeled_ms() const {
        return used_out_of_core ? ooc.modeled_overlap_ms : in_core.modeled_total_ms();
    }
};

/// Convenience driver: sorts host data in core when the footprint fits the
/// device, otherwise falls back to the out-of-core pipeline transparently —
/// the "without any concern of GPU global memory" interface of section 9.
AutoSortStats auto_sort(simt::Device& device, std::span<float> host_data,
                        std::size_t num_arrays, std::size_t array_size,
                        const OocOptions& opts = {});

}  // namespace ooc
