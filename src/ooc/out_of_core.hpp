#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/gpu_array_sort.hpp"
#include "core/resilient.hpp"
#include "simt/device.hpp"

namespace ooc {

/// Options for the out-of-core array sort (the paper's section 9 future
/// work: "sort huge datasets ... without any concern of GPU global memory"
/// by hiding transfer latencies).
struct OocOptions {
    /// Arrays per device batch; 0 = auto-size to a fraction of free device
    /// memory (divided across the stream pipeline depth).
    std::size_t batch_arrays = 0;
    /// Stream pipeline depth; 2 = classic double buffering.  1 disables
    /// overlap (the comparison baseline in the bench).  0 is invalid: both
    /// out_of_core_sort and auto_batch_arrays throw std::invalid_argument.
    unsigned num_streams = 2;
    double memory_safety_factor = 0.9;  ///< fraction of device memory usable
    gas::Options sort_opts;

    /// Chunk-level resilience: a chunk whose upload/sort/verify raises a
    /// transient error (gas::resilient::transient) is retried alone per this
    /// policy — completed chunks are never redone.  Set
    /// sort_opts.verify_output to make verification part of the chunk.
    gas::resilient::RetryPolicy retry;
    /// After retries are exhausted, sort the failing chunk solo on the host
    /// (std::sort per row) instead of failing the whole run.  Off: the last
    /// error propagates (any checkpoint still records completed chunks).
    bool host_fallback = true;
};

/// Cost summary of an out-of-core run.
struct OocStats {
    std::size_t num_arrays = 0;
    std::size_t array_size = 0;
    std::size_t batches = 0;
    std::size_t batch_arrays = 0;
    double modeled_overlap_ms = 0.0;   ///< timeline makespan with streams
    double modeled_serial_ms = 0.0;    ///< same ops fully serialized
    double kernel_ms = 0.0;            ///< modeled device compute only
    double transfer_ms = 0.0;          ///< modeled H2D + D2H only
    double wall_ms = 0.0;

    // Resilience accounting (all zero on a fault-free run).
    std::size_t chunk_retries = 0;        ///< device re-attempts after transient errors
    std::size_t chunk_host_fallbacks = 0; ///< chunks sorted on the host after retries
    std::size_t chunks_skipped = 0;       ///< chunks a resumed checkpoint marked done
    double retry_backoff_ms = 0.0;        ///< modeled backoff accrued by retries

    [[nodiscard]] double overlap_speedup() const {
        return modeled_overlap_ms > 0.0 ? modeled_serial_ms / modeled_overlap_ms : 1.0;
    }
};

/// Chunk-granular progress record for checkpoint-resume: one done flag per
/// chunk of the (num_arrays, array_size, batch_arrays) geometry.  Pass the
/// same checkpoint back to out_of_core_sort after a failed/interrupted run
/// and completed chunks are skipped, the failed chunk re-sorts alone.  A
/// checkpoint whose geometry does not match the call is reinitialized.
struct OocCheckpoint {
    std::size_t num_arrays = 0;
    std::size_t array_size = 0;
    std::size_t batch_arrays = 0;
    std::vector<std::uint8_t> done;  ///< one flag per chunk, in chunk order

    [[nodiscard]] std::size_t completed() const {
        std::size_t n = 0;
        for (const std::uint8_t d : done) n += d != 0 ? 1 : 0;
        return n;
    }
    [[nodiscard]] bool complete() const {
        return !done.empty() && completed() == done.size();
    }
    [[nodiscard]] bool matches(std::size_t n_arrays, std::size_t arr_size,
                               std::size_t batch) const {
        const std::size_t chunks = batch > 0 ? (n_arrays + batch - 1) / batch : 0;
        return num_arrays == n_arrays && array_size == arr_size && batch_arrays == batch &&
               done.size() == chunks;
    }
};

/// Sorts a host dataset of num_arrays x array_size floats that may exceed
/// device memory: batches stream through the device on a multi-stream
/// pipeline (H2D -> three sort kernels -> D2H), overlapping transfers with
/// compute.  The host buffer is sorted in place.
/// `checkpoint` (optional) enables chunk-granular resume: completed chunks
/// recorded there are skipped, and every chunk completed by this call is
/// recorded before the next chunk starts — so a run that dies mid-way
/// resumes without redoing finished work.
OocStats out_of_core_sort(simt::Device& device, std::span<float> host_data,
                          std::size_t num_arrays, std::size_t array_size,
                          const OocOptions& opts = {}, OocCheckpoint* checkpoint = nullptr);

/// The batch size (#arrays) auto-sizing would pick for this device.
[[nodiscard]] std::size_t auto_batch_arrays(const simt::Device& device, std::size_t array_size,
                                            const OocOptions& opts);

/// Result of auto_sort: which path ran and its stats.
struct AutoSortStats {
    bool used_out_of_core = false;
    gas::SortStats in_core;  ///< filled when the dataset fit the device
    OocStats ooc;            ///< filled when batching was required

    [[nodiscard]] double modeled_ms() const {
        return used_out_of_core ? ooc.modeled_overlap_ms : in_core.modeled_total_ms();
    }
};

/// Convenience driver: sorts host data in core when the footprint fits the
/// device, otherwise falls back to the out-of-core pipeline transparently —
/// the "without any concern of GPU global memory" interface of section 9.
AutoSortStats auto_sort(simt::Device& device, std::span<float> host_data,
                        std::size_t num_arrays, std::size_t array_size,
                        const OocOptions& opts = {});

}  // namespace ooc
